#include "exec/hyper_join.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "exec/spill.h"
#include "obs/metrics.h"
#include "parallel/parallel_hyper_join.h"

namespace adaptdb {

namespace {

/// Probe-set read-ahead window: while a group probes one window of S
/// blocks, the next window loads into the buffer pool through the store's
/// async backend (the scan path's idiom, extended to the join's probe
/// stream). Serial-path feature like scan read-ahead — parallel groups
/// already overlap their probe loads across threads.
constexpr size_t kProbePrefetchWindow = 8;

int64_t PrefetchProbeWindow(const BlockStore& store,
                            const std::vector<BlockId>& probe_ids, size_t lo,
                            size_t hi, const PredicateSet& preds) {
  if (lo >= hi) return 0;
  std::vector<BlockId> ahead;
  ahead.reserve(hi - lo);
  for (size_t j = lo; j < hi; ++j) {
    if (preds.empty() || store.MayMatchMeta(probe_ids[j], preds)) {
      ahead.push_back(probe_ids[j]);
    }
  }
  return store.Prefetch(ahead);
}

}  // namespace

Result<JoinExecResult> HyperJoin(const BlockStore& r_store, AttrId r_attr,
                                 const PredicateSet& r_preds,
                                 const BlockStore& s_store, AttrId s_attr,
                                 const PredicateSet& s_preds,
                                 const OverlapMatrix& overlap,
                                 const Grouping& grouping,
                                 const ClusterSim& cluster,
                                 const SpillConfig& spill,
                                 std::vector<Record>* output) {
  JoinExecResult out;
  const bool read_ahead = s_store.CanPrefetch();
  const auto phase_start = std::chrono::steady_clock::now();
  for (const auto& group : grouping.groups) {
    if (group.empty()) continue;
    // Build side: the group's R blocks, hashed on the join attribute.
    std::vector<BlockId> group_blocks;
    group_blocks.reserve(group.size());
    for (size_t i : group) group_blocks.push_back(overlap.r_blocks[i]);
    const NodeId worker = cluster.ScheduleTask(group_blocks);

    const bool grace =
        spill.enabled && spill.max_build_blocks > 0 &&
        static_cast<int64_t>(group_blocks.size()) > spill.max_build_blocks;
    if (grace) {
      // Oversized build side: don't pin it — hash-partition both sides to
      // spill files and join one partition at a time. The needed-S set is
      // computed from the overlap vectors alone (no block access).
      BitVector needed(overlap.NumS());
      for (size_t i : group) needed.OrWith(overlap.vectors[i]);
      std::vector<BlockId> probe_ids;
      for (size_t j : needed.SetBits()) {
        probe_ids.push_back(overlap.s_blocks[j]);
      }
      ADB_RETURN_NOT_OK(exec::GraceHashJoinGroup(
          r_store, r_attr, r_preds, s_store, s_attr, s_preds, group_blocks,
          probe_ids, cluster, worker, spill, &out, output));
      continue;
    }

    HashIndex index(r_attr);
    BitVector needed(overlap.NumS());
    // R pins live for the whole group: the hash index references their
    // records. S blocks stream through one transient pin at a time —
    // exactly the paper's buffer model (build side resident, probe side
    // streamed).
    std::vector<BlockRef> build_pins;
    build_pins.reserve(group.size());
    for (size_t i : group) {
      const BlockId rb = overlap.r_blocks[i];
      auto blk = r_store.Get(rb);
      if (!blk.ok()) return blk.status();
      build_pins.push_back(blk.ValueOrDie());
      cluster.ReadBlock(rb, worker, &out.io);
      ++out.r_blocks_read;
      index.AddBlock(*build_pins.back(), r_preds);
      needed.OrWith(overlap.vectors[i]);
    }

    // Probe side: every overlapping S block, streamed one at a time. Range
    // metadata prunes S blocks the S-side predicates exclude *before* they
    // are pinned — on a buffered store a pruned block is never loaded, so
    // the group's probe phase incurs no miss for it (the same skip the
    // scan path applies, extended to the join; MayMatchMeta never does
    // I/O). Probing a pruned block would find nothing: its selection
    // vector is provably empty.
    std::vector<BlockId> probe_ids;
    for (size_t j : needed.SetBits()) {
      probe_ids.push_back(overlap.s_blocks[j]);
    }
    const size_t n = probe_ids.size();
    for (size_t j = 0; j < n; ++j) {
      const BlockId sb = probe_ids[j];
      if (read_ahead && j % kProbePrefetchWindow == 0) {
        out.io.prefetched += PrefetchProbeWindow(
            s_store, probe_ids, j + kProbePrefetchWindow,
            std::min(n, j + 2 * kProbePrefetchWindow), s_preds);
      }
      if (!s_preds.empty() && !s_store.MayMatchMeta(sb, s_preds)) {
        ++out.s_blocks_skipped;
        obs::Count(obs::Counter::kBlocksSkippedMeta);
        continue;
      }
      auto blk = s_store.Get(sb);
      if (!blk.ok()) return blk.status();
      cluster.ReadBlock(sb, worker, &out.io);
      ++out.s_blocks_read;
      index.Probe(*blk.ValueOrDie(), s_attr, s_preds, &out.counts, output);
    }
  }
  // One phase: groups have no barrier between build and probe (build-side
  // residency ends only when the group's probes finish), so a finer split
  // would not be sequential on one thread at higher thread counts.
  out.phases.push_back(
      {"build_probe",
       std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                     phase_start)
           .count(),
       out.io, static_cast<int64_t>(grouping.groups.size())});
  return out;
}

Result<JoinExecResult> HyperJoin(const BlockStore& r_store, AttrId r_attr,
                                 const PredicateSet& r_preds,
                                 const BlockStore& s_store, AttrId s_attr,
                                 const PredicateSet& s_preds,
                                 const OverlapMatrix& overlap,
                                 const Grouping& grouping,
                                 const ClusterSim& cluster,
                                 std::vector<Record>* output) {
  // Env-driven spilling applies here too: every entry point must take the
  // same grace-vs-in-memory decision per group, or serial and parallel
  // runs would emit group rows in different orders under ADAPTDB_SPILL.
  return HyperJoin(r_store, r_attr, r_preds, s_store, s_attr, s_preds,
                   overlap, grouping, cluster, ApplySpillEnv(SpillConfig{}),
                   output);
}

Result<JoinExecResult> HyperJoin(const BlockStore& r_store, AttrId r_attr,
                                 const PredicateSet& r_preds,
                                 const BlockStore& s_store, AttrId s_attr,
                                 const PredicateSet& s_preds,
                                 const OverlapMatrix& overlap,
                                 const Grouping& grouping,
                                 const ClusterSim& cluster,
                                 const ExecConfig& config,
                                 std::vector<Record>* output) {
  const SpillConfig spill = ApplySpillEnv(config.spill);
  if (config.num_threads <= 1) {
    return HyperJoin(r_store, r_attr, r_preds, s_store, s_attr, s_preds,
                     overlap, grouping, cluster, spill, output);
  }
  ExecConfig resolved = config;
  resolved.spill = spill;
  return ParallelHyperJoin(r_store, r_attr, r_preds, s_store, s_attr, s_preds,
                           overlap, grouping, cluster, resolved, output);
}

}  // namespace adaptdb
