#include "exec/kernels.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace adaptdb {
namespace kernels {

namespace {

/// Same ApplyOp as the MatchesAt path (storage/column.cc): native <, ==
/// on an already-ordered same-type pair.
template <typename T>
bool ApplyOp(CompareOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNeq:
      return lhs != rhs;
  }
  return false;
}

/// Resolves `op` against a same-type constant once, then hands the data
/// pointer and a bound comparison lambda to `shape` (one of the loop
/// shells below). One instantiation per (T, op) — the dispatch the
/// per-row path re-ran every iteration happens exactly once here.
template <typename T, typename F>
void SameType(CompareOp op, const T* data, const T& c, F&& shape) {
  switch (op) {
    case CompareOp::kLt:
      shape(data, [&c](const T& v) { return v < c; });
      break;
    case CompareOp::kLe:
      shape(data, [&c](const T& v) { return v <= c; });
      break;
    case CompareOp::kGt:
      shape(data, [&c](const T& v) { return v > c; });
      break;
    case CompareOp::kGe:
      shape(data, [&c](const T& v) { return v >= c; });
      break;
    case CompareOp::kEq:
      shape(data, [&c](const T& v) { return v == c; });
      break;
    case CompareOp::kNeq:
      shape(data, [&c](const T& v) { return v != c; });
      break;
  }
}

/// Mixed int64/double: replicates ApplyOpMixedNumeric (storage/column.cc)
/// — ordering widens to double, <= collapses to < and >= to > because
/// cross-type equality is always false, kEq matches nothing, kNeq
/// everything (including against a NaN constant).
template <typename SrcT, typename F>
void MixedNumeric(CompareOp op, const SrcT* data, double c, F&& shape) {
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      shape(data, [c](SrcT v) { return static_cast<double>(v) < c; });
      break;
    case CompareOp::kGt:
    case CompareOp::kGe:
      shape(data, [c](SrcT v) { return static_cast<double>(v) > c; });
      break;
    case CompareOp::kEq:
      shape(data, [](SrcT) { return false; });
      break;
    case CompareOp::kNeq:
      shape(data, [](SrcT) { return true; });
      break;
  }
}

/// Dictionary-resident strings: equality resolves the constant to a code
/// once and compares uint32 codes; ordered operators evaluate each
/// dictionary entry once into a match bitmap indexed by code. Either way
/// the loop never touches a string.
template <typename F>
void DictStrings(const Predicate& pred, const Column& col, F&& shape) {
  const uint32_t* codes = col.codes().data();
  if (pred.op == CompareOp::kEq || pred.op == CompareOp::kNeq) {
    const int64_t code = col.FindCode(pred.value.AsString());
    const bool want = pred.op == CompareOp::kEq;
    if (code < 0) {
      // Constant absent from the dictionary: kEq matches no row, kNeq
      // every row.
      shape(codes, [want](uint32_t) { return !want; });
    } else {
      const uint32_t c = static_cast<uint32_t>(code);
      shape(codes, [c, want](uint32_t v) { return (v == c) == want; });
    }
    return;
  }
  const std::vector<std::string>& dict = col.dict();
  std::vector<uint8_t> bitmap(dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    bitmap[i] = ApplyOp(pred.op, dict[i], pred.value.AsString()) ? 1 : 0;
  }
  const uint8_t* bm = bitmap.data();
  shape(codes, [bm](uint32_t v) { return bm[v] != 0; });
}

/// Resolves (column representation × constant type × op) once and invokes
/// `shape(data, match)` with the concrete typed pointer and bound
/// comparison. Precondition: Supported(col, pred).
template <typename F>
void Dispatch(const Predicate& pred, const Column& col, F&& shape) {
  const DataType pt = pred.value.type();
  if (col.dict_coded()) {
    DictStrings(pred, col, shape);
    return;
  }
  switch (col.type()) {
    case DataType::kInt64:
      if (pt == DataType::kInt64) {
        SameType(pred.op, col.ints().data(), pred.value.AsInt64(), shape);
      } else {
        MixedNumeric(pred.op, col.ints().data(), pred.value.AsDouble(),
                     shape);
      }
      return;
    case DataType::kDouble:
      if (pt == DataType::kDouble) {
        SameType(pred.op, col.doubles().data(), pred.value.AsDouble(),
                 shape);
      } else {
        MixedNumeric(pred.op, col.doubles().data(),
                     static_cast<double>(pred.value.AsInt64()), shape);
      }
      return;
    case DataType::kString:
      SameType(pred.op, col.strings().data(), pred.value.AsString(), shape);
      return;
  }
  assert(false && "Dispatch on an unsupported (column, predicate) pair");
}

}  // namespace

namespace {

/// -1 = not resolved yet; 0 = disabled; 1 = enabled.
std::atomic<int> g_enabled{-1};

}  // namespace

bool Enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("ADAPTDB_NO_KERNELS");
    const bool off = e != nullptr && e[0] != '\0' &&
                     !(e[0] == '0' && e[1] == '\0');
    v = off ? 0 : 1;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetEnabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool Supported(const Column& col, const Predicate& pred) {
  if (!col.typed() || col.mixed()) return false;
  const DataType ct = col.type();
  const DataType pt = pred.value.type();
  if (ct == DataType::kString || pt == DataType::kString) {
    // Cross string/numeric keeps the fallback's Value semantics
    // (debug-build assert included).
    return ct == pt;
  }
  return true;  // Same-type numeric or mixed int64/double.
}

void FilterFull(const Predicate& pred, const Column& col,
                SelectionVector* sel) {
  const uint32_t n = static_cast<uint32_t>(col.size());
  sel->resize(n);
  uint32_t* out = sel->data();
  size_t k = 0;
  Dispatch(pred, col, [&](const auto* data, auto match) {
    // Branch-light: always write the candidate index, advance the write
    // cursor only on a match.
    for (uint32_t i = 0; i < n; ++i) {
      out[k] = i;
      k += match(data[i]) ? 1 : 0;
    }
  });
  sel->resize(k);
}

void FilterRefine(const Predicate& pred, const Column& col,
                  SelectionVector* sel) {
  uint32_t* s = sel->data();
  const size_t n = sel->size();
  size_t k = 0;
  Dispatch(pred, col, [&](const auto* data, auto match) {
    for (size_t j = 0; j < n; ++j) {
      const uint32_t row = s[j];
      s[k] = row;
      k += match(data[row]) ? 1 : 0;
    }
  });
  sel->resize(k);
}

size_t CountFull(const Predicate& pred, const Column& col) {
  const size_t n = col.size();
  size_t count = 0;
  Dispatch(pred, col, [&](const auto* data, auto match) {
    for (size_t i = 0; i < n; ++i) count += match(data[i]) ? 1 : 0;
  });
  return count;
}

size_t CountRefine(const Predicate& pred, const Column& col,
                   const SelectionVector& sel) {
  size_t count = 0;
  Dispatch(pred, col, [&](const auto* data, auto match) {
    for (const uint32_t row : sel) count += match(data[row]) ? 1 : 0;
  });
  return count;
}

}  // namespace kernels
}  // namespace adaptdb
