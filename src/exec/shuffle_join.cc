#include "exec/shuffle_join.h"

#include <chrono>

#include "exec/shuffle_kernels.h"
#include "exec/spill.h"
#include "parallel/parallel_shuffle_join.h"

namespace adaptdb {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Result<JoinExecResult> ShuffleJoin(
    const BlockStore& r_store, const std::vector<BlockId>& r_blocks,
    AttrId r_attr, const PredicateSet& r_preds, const BlockStore& s_store,
    const std::vector<BlockId>& s_blocks, AttrId s_attr,
    const PredicateSet& s_preds, const ClusterSim& cluster,
    std::vector<Record>* output) {
  JoinExecResult out;
  const size_t num_partitions = static_cast<size_t>(cluster.num_nodes());

  // Phase 1: map-side read + filter + hash partition. Each input block is
  // read locally by its own map task and its filtered contents shuffled.
  // Pins keep every mapped block resident until the build/probe phase has
  // consumed the partitioned row references — residency equals the input
  // (the seed's memory profile; see ROADMAP "out-of-core shuffle" for the
  // spill-to-segments version that bounds it).
  std::vector<std::vector<RowRef>> r_parts(num_partitions);
  std::vector<std::vector<RowRef>> s_parts(num_partitions);
  std::vector<BlockRef> pins;
  pins.reserve(r_blocks.size() + s_blocks.size());

  const auto map_start = std::chrono::steady_clock::now();
  for (BlockId id : r_blocks) {
    ADB_RETURN_NOT_OK(shuffle_internal::MapBlock(
        r_store, id, r_attr, r_preds, cluster, &r_parts, &pins, &out.io));
    ++out.r_blocks_read;
  }
  for (BlockId id : s_blocks) {
    ADB_RETURN_NOT_OK(shuffle_internal::MapBlock(
        s_store, id, s_attr, s_preds, cluster, &s_parts, &pins, &out.io));
    ++out.s_blocks_read;
  }
  // Every input block's data crosses the shuffle (spill write + remote read).
  cluster.ShuffleBlocks(
      static_cast<int64_t>(r_blocks.size() + s_blocks.size()), &out.io);
  out.phases.push_back({"map", SecondsSince(map_start), out.io,
                        out.r_blocks_read + out.s_blocks_read});

  // Phase 2: per-partition hash join (build on R, probe with S).
  const auto reduce_start = std::chrono::steady_clock::now();
  const IoStats io_after_map = out.io;
  for (size_t p = 0; p < num_partitions; ++p) {
    shuffle_internal::BuildProbePartition(r_parts[p], r_attr, s_parts[p],
                                          s_attr, &out.counts, output);
  }
  out.phases.push_back({"reduce", SecondsSince(reduce_start),
                        out.io.Minus(io_after_map),
                        static_cast<int64_t>(num_partitions)});
  return out;
}

Result<JoinExecResult> ShuffleJoin(
    const BlockStore& r_store, const std::vector<BlockId>& r_blocks,
    AttrId r_attr, const PredicateSet& r_preds, const BlockStore& s_store,
    const std::vector<BlockId>& s_blocks, AttrId s_attr,
    const PredicateSet& s_preds, const ClusterSim& cluster,
    const ExecConfig& config, std::vector<Record>* output) {
  const SpillConfig spill = ApplySpillEnv(config.spill);
  if (spill.enabled) {
    ExecConfig spilling = config;
    spilling.spill = spill;
    return exec::SpillingShuffleJoin(r_store, r_blocks, r_attr, r_preds,
                                     s_store, s_blocks, s_attr, s_preds,
                                     cluster, spilling, output);
  }
  if (config.num_threads <= 1) {
    return ShuffleJoin(r_store, r_blocks, r_attr, r_preds, s_store, s_blocks,
                       s_attr, s_preds, cluster, output);
  }
  return ParallelShuffleJoin(r_store, r_blocks, r_attr, r_preds, s_store,
                             s_blocks, s_attr, s_preds, cluster, config,
                             output);
}

}  // namespace adaptdb
