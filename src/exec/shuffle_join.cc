#include "exec/shuffle_join.h"

namespace adaptdb {

Result<JoinExecResult> ShuffleJoin(
    const BlockStore& r_store, const std::vector<BlockId>& r_blocks,
    AttrId r_attr, const PredicateSet& r_preds, const BlockStore& s_store,
    const std::vector<BlockId>& s_blocks, AttrId s_attr,
    const PredicateSet& s_preds, const ClusterSim& cluster,
    std::vector<Record>* output) {
  JoinExecResult out;
  const int32_t num_partitions = cluster.num_nodes();

  // Phase 1: map-side read + filter + hash partition. Each input block is
  // read locally by its own map task and its filtered contents shuffled.
  std::vector<std::vector<const Record*>> r_parts(
      static_cast<size_t>(num_partitions));
  std::vector<std::vector<const Record*>> s_parts(
      static_cast<size_t>(num_partitions));

  for (BlockId id : r_blocks) {
    auto blk = r_store.Get(id);
    if (!blk.ok()) return blk.status();
    auto node = cluster.Locate(id);
    cluster.ReadBlock(id, node.ok() ? node.ValueOrDie() : 0, &out.io);
    ++out.r_blocks_read;
    for (const Record& rec : blk.ValueOrDie()->records()) {
      if (!MatchesAll(r_preds, rec)) continue;
      const size_t p = HashValue(rec[static_cast<size_t>(r_attr)]) %
                       static_cast<size_t>(num_partitions);
      r_parts[p].push_back(&rec);
    }
  }
  for (BlockId id : s_blocks) {
    auto blk = s_store.Get(id);
    if (!blk.ok()) return blk.status();
    auto node = cluster.Locate(id);
    cluster.ReadBlock(id, node.ok() ? node.ValueOrDie() : 0, &out.io);
    ++out.s_blocks_read;
    for (const Record& rec : blk.ValueOrDie()->records()) {
      if (!MatchesAll(s_preds, rec)) continue;
      const size_t p = HashValue(rec[static_cast<size_t>(s_attr)]) %
                       static_cast<size_t>(num_partitions);
      s_parts[p].push_back(&rec);
    }
  }
  // Every input block's data crosses the shuffle (spill write + remote read).
  cluster.ShuffleBlocks(
      static_cast<int64_t>(r_blocks.size() + s_blocks.size()), &out.io);

  // Phase 2: per-partition hash join (build on R, probe with S).
  for (int32_t p = 0; p < num_partitions; ++p) {
    std::unordered_map<Value, std::vector<const Record*>, ValueHash> index;
    for (const Record* rec : r_parts[static_cast<size_t>(p)]) {
      index[(*rec)[static_cast<size_t>(r_attr)]].push_back(rec);
    }
    for (const Record* rec : s_parts[static_cast<size_t>(p)]) {
      const Value& key = (*rec)[static_cast<size_t>(s_attr)];
      auto it = index.find(key);
      if (it == index.end()) continue;
      const auto& bucket = it->second;
      out.counts.output_rows += static_cast<int64_t>(bucket.size());
      out.counts.checksum += static_cast<uint64_t>(bucket.size()) *
                             (static_cast<uint64_t>(HashValue(key)) | 1);
      if (output != nullptr) {
        for (const Record* build : bucket) {
          Record joined = *build;
          joined.insert(joined.end(), rec->begin(), rec->end());
          output->push_back(std::move(joined));
        }
      }
    }
  }
  return out;
}

}  // namespace adaptdb
