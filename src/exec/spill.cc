#include "exec/spill.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <utility>

#include "exec/shuffle_kernels.h"
#include "io/format.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/task_pool.h"

namespace adaptdb {

SpillConfig ApplySpillEnv(SpillConfig spill) {
  if (const char* enabled = std::getenv("ADAPTDB_SPILL")) {
    spill.enabled = enabled[0] == '1';
  }
  if (const char* rows = std::getenv("ADAPTDB_SPILL_ROWS")) {
    const long long n = std::atoll(rows);
    if (n >= 1) spill.chunk_rows = static_cast<int64_t>(n);
  }
  if (const char* blocks = std::getenv("ADAPTDB_SPILL_BUILD_BLOCKS")) {
    const long long n = std::atoll(blocks);
    if (n >= 0) spill.max_build_blocks = static_cast<int64_t>(n);
  }
  if (const char* threads = std::getenv("ADAPTDB_SPILL_IO_THREADS")) {
    const long long n = std::atoll(threads);
    if (n >= 0) spill.io_threads = static_cast<int32_t>(n);
  }
  if (const char* dir = std::getenv("ADAPTDB_SPILL_DIR")) {
    spill.dir = dir;
  }
  return spill;
}

namespace exec {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Status WriteAllAt(int fd, const std::string& bytes, uint64_t offset) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::pwrite(fd, bytes.data() + written,
                               bytes.size() - written,
                               static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("spill pwrite failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Deterministic chunk block id: the writer's global morsel index in the
/// high bits, the morsel-local creation sequence in the low.
BlockId ChunkId(int64_t morsel, int64_t seq) {
  return (morsel << 32) | seq;
}

}  // namespace

Result<std::unique_ptr<SpillFile>> SpillFile::Create(const std::string& dir,
                                                     io::AsyncIo* async) {
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
  }
  std::string tmpl = base + "/adaptdb-spill-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const int fd = ::mkstemp(buf.data());
  if (fd < 0) {
    return Status::Internal("mkstemp('" + tmpl +
                            "') failed: " + std::strerror(errno));
  }
  // Unlink immediately: the fd is the only reference, so the file vanishes
  // on close — including after a crash. Nothing to clean up, ever.
  ::unlink(buf.data());
  return std::unique_ptr<SpillFile>(new SpillFile(fd, async));
}

SpillFile::~SpillFile() {
  // In-flight async writes reference both the fd and this object's error
  // slot; wait for them before closing either (error paths may destroy the
  // file without calling Finish()).
  if (async_ != nullptr) async_->Drain();
  if (fd_ >= 0) ::close(fd_);
}

Result<SpillChunk> SpillFile::AppendBlock(const Block& block) {
  auto bytes = std::make_shared<std::string>(io::EncodeBlock(block));
  SpillChunk chunk;
  chunk.chunk_id = block.id();
  chunk.rows = static_cast<int64_t>(block.num_records());
  chunk.length = bytes->size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_.ok()) return first_error_;
    chunk.offset = size_;
    size_ += bytes->size();
  }
  obs::Count(obs::Counter::kSpillBytesWritten,
             static_cast<int64_t>(bytes->size()));
  if (async_ == nullptr) {
    const Status st = WriteAllAt(fd_, *bytes, chunk.offset);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) first_error_ = st;
      return st;
    }
    return chunk;
  }
  io::AsyncIo::Op op;
  op.kind = io::AsyncIo::Op::Kind::kWrite;
  op.fd = fd_;
  op.offset = chunk.offset;
  op.buf = bytes.get();
  op.done = [this, bytes](Status st) {
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) first_error_ = std::move(st);
    }
  };
  std::vector<io::AsyncIo::Op> ops;
  ops.push_back(std::move(op));
  async_->Submit(std::move(ops));
  return chunk;
}

Status SpillFile::Finish() {
  if (async_ != nullptr) async_->Drain();
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

Status SpillFile::ReadChunkRaw(const SpillChunk& chunk,
                               std::string* out) const {
  out->resize(chunk.length);
  size_t done = 0;
  while (done < chunk.length) {
    const ssize_t n = ::pread(fd_, out->data() + done, chunk.length - done,
                              static_cast<off_t>(chunk.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("spill pread failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      return Status::Corruption(
          "short read in spill file: " + std::to_string(done) + " of " +
          std::to_string(chunk.length) + " bytes at offset " +
          std::to_string(chunk.offset) + " (truncated file?)");
    }
    done += static_cast<size_t>(n);
  }
  obs::Count(obs::Counter::kSpillBytesRead,
             static_cast<int64_t>(chunk.length));
  return Status::OK();
}

Result<Block> SpillFile::DecodeChunk(const SpillChunk& chunk,
                                     const std::string& bytes,
                                     int32_t expected_attrs) {
  auto block = io::DecodeBlock(bytes, expected_attrs);
  if (!block.ok()) return block.status();
  if (block.ValueOrDie().id() != chunk.chunk_id) {
    return Status::Corruption(
        "spill chunk at offset " + std::to_string(chunk.offset) +
        " holds chunk " + std::to_string(block.ValueOrDie().id()) +
        ", expected " + std::to_string(chunk.chunk_id));
  }
  return block;
}

Result<Block> SpillFile::ReadChunk(const SpillChunk& chunk,
                                   int32_t expected_attrs) const {
  std::string bytes;
  ADB_RETURN_NOT_OK(ReadChunkRaw(chunk, &bytes));
  return DecodeChunk(chunk, bytes, expected_attrs);
}

int64_t SpillFile::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(size_);
}

namespace {

/// One in-flight asynchronous chunk read: buffer + completion latch.
struct PendingRead {
  std::string buf;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
};

/// Streams a partition's chunks in order with one-chunk read-ahead on the
/// AsyncIo backend (synchronous reads when no backend is available). The
/// overlap target: while the consumer decodes+probes chunk i, chunk i+1's
/// pread is in flight on an I/O thread.
class ChunkStream {
 public:
  ChunkStream(const SpillFile& file, const std::vector<SpillChunk>& chunks,
              io::AsyncIo* async)
      : file_(file), chunks_(chunks), async_(async) {
    if (async_ != nullptr && !chunks_.empty()) StartRead(0);
  }

  /// Reads (or collects) chunk `next_` and decodes it.
  Result<Block> Next(int32_t expected_attrs) {
    const size_t i = next_++;
    const SpillChunk& chunk = chunks_[i];
    if (async_ == nullptr) {
      return file_.ReadChunk(chunk, expected_attrs);
    }
    std::shared_ptr<PendingRead> pending = std::move(inflight_);
    if (i + 1 < chunks_.size()) StartRead(i + 1);
    std::unique_lock<std::mutex> lock(pending->mu);
    pending->cv.wait(lock, [&] { return pending->done; });
    if (!pending->status.ok()) return pending->status;
    obs::Count(obs::Counter::kSpillBytesRead,
               static_cast<int64_t>(chunk.length));
    return SpillFile::DecodeChunk(chunk, pending->buf, expected_attrs);
  }

 private:
  void StartRead(size_t i) {
    auto pending = std::make_shared<PendingRead>();
    pending->buf.resize(chunks_[i].length);
    io::AsyncIo::Op op;
    op.kind = io::AsyncIo::Op::Kind::kRead;
    op.fd = file_.fd_for_testing();
    op.offset = chunks_[i].offset;
    op.buf = &pending->buf;
    op.done = [pending](Status st) {
      std::lock_guard<std::mutex> lock(pending->mu);
      pending->status = std::move(st);
      pending->done = true;
      pending->cv.notify_all();
    };
    inflight_ = pending;
    std::vector<io::AsyncIo::Op> ops;
    ops.push_back(std::move(op));
    async_->Submit(std::move(ops));
  }

  const SpillFile& file_;
  const std::vector<SpillChunk>& chunks_;
  io::AsyncIo* async_;
  std::shared_ptr<PendingRead> inflight_;
  size_t next_ = 0;
};

/// One spill-map morsel's output: per-partition chunk descriptor lists (in
/// creation order) plus the morsel's I/O accounting.
struct SpillMapPartial {
  Status status;
  std::vector<std::vector<SpillChunk>> chunks;
  IoStats io;
  int64_t blocks_read = 0;
};

/// Per-partition chunk buffers of one morsel: rows accumulate into a Block
/// until chunk_rows, then encode+append to the spill file. Buffer creation
/// order assigns chunk ids, so ids are a pure function of the (fixed)
/// decomposition and the row data.
class PartitionBuffers {
 public:
  PartitionBuffers(size_t num_partitions, int32_t num_attrs,
                   int64_t chunk_rows, int64_t global_morsel, SpillFile* file,
                   SpillMapPartial* partial)
      : num_attrs_(num_attrs),
        chunk_rows_(std::max<int64_t>(1, chunk_rows)),
        global_morsel_(global_morsel),
        file_(file),
        partial_(partial),
        bufs_(num_partitions) {}

  Status AddRow(size_t partition, const Record& rec) {
    auto& buf = bufs_[partition];
    if (!buf.has_value()) {
      buf.emplace(ChunkId(global_morsel_, next_seq_++), num_attrs_);
    }
    buf->Add(rec);
    if (static_cast<int64_t>(buf->num_records()) >= chunk_rows_) {
      return Flush(partition);
    }
    return Status::OK();
  }

  /// End-of-morsel: flush every residual buffer in partition order.
  Status FlushAll() {
    for (size_t p = 0; p < bufs_.size(); ++p) {
      if (bufs_[p].has_value()) ADB_RETURN_NOT_OK(Flush(p));
    }
    return Status::OK();
  }

 private:
  Status Flush(size_t partition) {
    auto chunk = file_->AppendBlock(*bufs_[partition]);
    if (!chunk.ok()) return chunk.status();
    partial_->chunks[partition].push_back(chunk.ValueOrDie());
    partial_->io.spill_bytes_written +=
        static_cast<int64_t>(chunk.ValueOrDie().length);
    bufs_[partition].reset();
    return Status::OK();
  }

  int32_t num_attrs_;
  int64_t chunk_rows_;
  int64_t global_morsel_;
  SpillFile* file_;
  SpillMapPartial* partial_;
  std::vector<std::optional<Block>> bufs_;
  int64_t next_seq_ = 0;
};

/// Spilling map kernel for one morsel: read + account + filter +
/// hash-partition *materialized rows* into spill chunks. Unlike the
/// in-memory MapBlock, each block's pin drops at the end of its iteration —
/// residency stays bounded by one block regardless of input size.
void MapMorselSpill(const BlockStore& store, const std::vector<BlockId>& blocks,
                    AttrId attr, const PredicateSet& preds,
                    const ClusterSim& cluster, size_t num_partitions,
                    int64_t chunk_rows, int64_t morsel, int64_t m,
                    int64_t global_morsel, SpillFile* file,
                    SpillMapPartial* p) {
  p->chunks.resize(num_partitions);
  PartitionBuffers bufs(num_partitions, store.num_attrs(), chunk_rows,
                        global_morsel, file, p);
  const int64_t n = static_cast<int64_t>(blocks.size());
  const int64_t lo = m * morsel;
  const int64_t hi = std::min<int64_t>(n, lo + morsel);
  Record scratch;
  for (int64_t i = lo; i < hi; ++i) {
    const BlockId id = blocks[static_cast<size_t>(i)];
    auto blk = store.Get(id);
    if (!blk.ok()) {
      p->status = blk.status();
      return;
    }
    const BlockRef pin = std::move(blk).ValueOrDie();
    auto node = cluster.Locate(id);
    cluster.ReadBlock(id, node.ok() ? node.ValueOrDie() : 0, &p->io);
    const SelectionVector sel = pin->FilterRows(preds);
    const Column& key_col = pin->column(attr);
    for (const uint32_t row : sel) {
      const size_t part = key_col.HashAt(row) % num_partitions;
      pin->GatherRecord(row, &scratch);
      p->status = bufs.AddRow(part, scratch);
      if (!p->status.ok()) return;
    }
    ++p->blocks_read;
  }
  p->status = bufs.FlushAll();
}

/// Concatenates per-morsel chunk lists for `partition` in morsel order —
/// the serial row sequence.
std::vector<SpillChunk> GatherChunks(
    const std::vector<SpillMapPartial>& partials, size_t partition) {
  std::vector<SpillChunk> out;
  for (const SpillMapPartial& p : partials) {
    out.insert(out.end(), p.chunks[partition].begin(),
               p.chunks[partition].end());
  }
  return out;
}

/// Reduce kernel for one spilled partition: decode all build chunks (kept
/// alive for the index's row references), then stream probe chunks in
/// order through the shared probe kernel.
Status ReduceSpilledPartition(const SpillFile& r_file,
                              const std::vector<SpillChunk>& r_chunks,
                              AttrId r_attr, int32_t r_attrs,
                              const SpillFile& s_file,
                              const std::vector<SpillChunk>& s_chunks,
                              AttrId s_attr, int32_t s_attrs,
                              io::AsyncIo* async, JoinCounts* counts,
                              std::vector<Record>* output, IoStats* io) {
  if (r_chunks.empty() || s_chunks.empty()) return Status::OK();
  std::vector<std::unique_ptr<Block>> build_blocks;
  build_blocks.reserve(r_chunks.size());
  shuffle_internal::PartitionIndex index;
  for (const SpillChunk& c : r_chunks) {
    auto blk = r_file.ReadChunk(c, r_attrs);
    if (!blk.ok()) return blk.status();
    io->spill_bytes_read += static_cast<int64_t>(c.length);
    build_blocks.push_back(
        std::make_unique<Block>(std::move(blk).ValueOrDie()));
    const Block& b = *build_blocks.back();
    std::vector<RowRef> refs;
    refs.reserve(b.num_records());
    for (uint32_t row = 0; row < b.num_records(); ++row) {
      refs.push_back(RowRef::OfBlock(&b, row));
    }
    shuffle_internal::AddToPartitionIndex(refs, r_attr, &index);
  }
  ChunkStream stream(s_file, s_chunks, async);
  for (const SpillChunk& c : s_chunks) {
    auto blk = stream.Next(s_attrs);
    if (!blk.ok()) return blk.status();
    io->spill_bytes_read += static_cast<int64_t>(c.length);
    const Block b = std::move(blk).ValueOrDie();
    std::vector<RowRef> refs;
    refs.reserve(b.num_records());
    for (uint32_t row = 0; row < b.num_records(); ++row) {
      refs.push_back(RowRef::OfBlock(&b, row));
    }
    shuffle_internal::ProbePartitionRows(index, refs, s_attr, counts, output);
  }
  return Status::OK();
}

}  // namespace

Result<JoinExecResult> SpillingShuffleJoin(
    const BlockStore& r_store, const std::vector<BlockId>& r_blocks,
    AttrId r_attr, const PredicateSet& r_preds, const BlockStore& s_store,
    const std::vector<BlockId>& s_blocks, AttrId s_attr,
    const PredicateSet& s_preds, const ClusterSim& cluster,
    const ExecConfig& config, std::vector<Record>* output) {
  JoinExecResult out;
  const size_t num_partitions = static_cast<size_t>(cluster.num_nodes());
  const SpillConfig& spill = config.spill;

  std::unique_ptr<io::AsyncIo> owned_async;
  io::AsyncIo* async = spill.async_io;
  if (async == nullptr && spill.io_threads > 0) {
    owned_async = io::MakeThreadPoolAsyncIo(spill.io_threads);
    async = owned_async.get();
  }
  auto r_file = SpillFile::Create(spill.dir, async);
  if (!r_file.ok()) return r_file.status();
  auto s_file = SpillFile::Create(spill.dir, async);
  if (!s_file.ok()) return s_file.status();
  SpillFile* r_spill = r_file.ValueOrDie().get();
  SpillFile* s_spill = s_file.ValueOrDie().get();

  // Phase 1: morsel-decomposed map — read, filter, hash-partition, spill.
  // Same fixed decomposition as the in-memory parallel driver; at
  // num_threads <= 1 the morsels run inline in index order.
  const int64_t morsel = std::max<int64_t>(1, config.morsel_blocks);
  const int64_t r_morsels =
      (static_cast<int64_t>(r_blocks.size()) + morsel - 1) / morsel;
  const int64_t s_morsels =
      (static_cast<int64_t>(s_blocks.size()) + morsel - 1) / morsel;
  std::vector<SpillMapPartial> r_map(static_cast<size_t>(r_morsels));
  std::vector<SpillMapPartial> s_map(static_cast<size_t>(s_morsels));
  const auto map_start = std::chrono::steady_clock::now();
  FirstFailure failed;
  const auto run_map_morsel = [&](int64_t m) {
    if (!failed.ShouldRun(m)) return;
    obs::TraceSpan morsel_span("exec", "spill_map_morsel", "morsel", m);
    SpillMapPartial* p;
    if (m < r_morsels) {
      p = &r_map[static_cast<size_t>(m)];
      MapMorselSpill(r_store, r_blocks, r_attr, r_preds, cluster,
                     num_partitions, spill.chunk_rows, morsel, m, m, r_spill,
                     p);
    } else {
      p = &s_map[static_cast<size_t>(m - r_morsels)];
      MapMorselSpill(s_store, s_blocks, s_attr, s_preds, cluster,
                     num_partitions, spill.chunk_rows, morsel, m - r_morsels,
                     m, s_spill, p);
    }
    if (!p->status.ok()) failed.Record(m);
  };
  if (config.num_threads <= 1) {
    for (int64_t m = 0; m < r_morsels + s_morsels; ++m) run_map_morsel(m);
  } else {
    PoolLease pool(config.pool, config.num_threads);
    pool->ParallelFor(0, r_morsels + s_morsels, run_map_morsel);
  }
  for (const SpillMapPartial& p : r_map) {
    if (!p.status.ok()) return p.status;
    out.io.Merge(p.io);
    out.r_blocks_read += p.blocks_read;
  }
  for (const SpillMapPartial& p : s_map) {
    if (!p.status.ok()) return p.status;
    out.io.Merge(p.io);
    out.s_blocks_read += p.blocks_read;
  }
  // Barrier: async chunk writes must be durable-in-page-cache (and their
  // errors surfaced) before any reduce task reads them back.
  ADB_RETURN_NOT_OK(r_spill->Finish());
  ADB_RETURN_NOT_OK(s_spill->Finish());
  // Every input block's data crosses the shuffle — identical logical
  // accounting to the in-memory executor; here the "local spill write"
  // leg of the modeled cost physically happened.
  cluster.ShuffleBlocks(
      static_cast<int64_t>(r_blocks.size() + s_blocks.size()), &out.io);

  // Gather per-partition chunk lists in morsel order and count partitions
  // that actually spilled (deterministic: a pure function of the data).
  std::vector<std::vector<SpillChunk>> r_chunks(num_partitions);
  std::vector<std::vector<SpillChunk>> s_chunks(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    r_chunks[p] = GatherChunks(r_map, p);
    s_chunks[p] = GatherChunks(s_map, p);
    if (!r_chunks[p].empty() || !s_chunks[p].empty()) {
      ++out.io.spilled_partitions;
    }
  }
  obs::Count(obs::Counter::kSpilledPartitions, out.io.spilled_partitions);
  out.phases.push_back({"map", SecondsSince(map_start), out.io,
                        out.r_blocks_read + out.s_blocks_read});

  // Phase 2: per-partition build/probe, streaming chunks back. Partitions
  // run inline in order at num_threads <= 1, on the pool otherwise; slots
  // merge in partition order either way.
  const auto reduce_start = std::chrono::steady_clock::now();
  const IoStats io_after_map = out.io;
  struct ReduceSlot {
    Status status;
    JoinCounts counts;
    std::vector<Record> rows;
    IoStats io;
  };
  std::vector<ReduceSlot> reduced(num_partitions);
  const bool materialize = output != nullptr;
  FirstFailure reduce_failed;
  const auto run_reduce = [&](int64_t part) {
    if (!reduce_failed.ShouldRun(part)) return;
    obs::TraceSpan part_span("exec", "spill_reduce_partition", "partition",
                             part);
    ReduceSlot& slot = reduced[static_cast<size_t>(part)];
    slot.status = ReduceSpilledPartition(
        *r_spill, r_chunks[static_cast<size_t>(part)], r_attr,
        r_store.num_attrs(), *s_spill, s_chunks[static_cast<size_t>(part)],
        s_attr, s_store.num_attrs(), async, &slot.counts,
        materialize ? &slot.rows : nullptr, &slot.io);
    if (!slot.status.ok()) reduce_failed.Record(part);
  };
  if (config.num_threads <= 1) {
    for (int64_t part = 0; part < static_cast<int64_t>(num_partitions);
         ++part) {
      run_reduce(part);
    }
  } else {
    PoolLease pool(config.pool, config.num_threads);
    pool->ParallelFor(0, static_cast<int64_t>(num_partitions), run_reduce);
  }
  for (ReduceSlot& slot : reduced) {
    if (!slot.status.ok()) return slot.status;
    out.counts.Merge(slot.counts);
    out.io.Merge(slot.io);
    if (materialize) {
      output->insert(output->end(),
                     std::make_move_iterator(slot.rows.begin()),
                     std::make_move_iterator(slot.rows.end()));
    }
  }
  if (async != nullptr) {
    out.io.async_reads_inflight_peak = async->stats().inflight_peak;
  }
  out.phases.push_back({"reduce", SecondsSince(reduce_start),
                        out.io.Minus(io_after_map),
                        static_cast<int64_t>(num_partitions)});
  return out;
}

Status GraceHashJoinGroup(const BlockStore& r_store, AttrId r_attr,
                          const PredicateSet& r_preds,
                          const BlockStore& s_store, AttrId s_attr,
                          const PredicateSet& s_preds,
                          const std::vector<BlockId>& group_blocks,
                          const std::vector<BlockId>& probe_ids,
                          const ClusterSim& cluster, NodeId worker,
                          const SpillConfig& spill, JoinExecResult* out,
                          std::vector<Record>* output) {
  obs::TraceSpan grace_span("exec", "grace_hash_group", "build_blocks",
                            static_cast<int64_t>(group_blocks.size()));
  // Fanout so each sub-partition's build side fits the threshold.
  const int64_t max_build = std::max<int64_t>(1, spill.max_build_blocks);
  const size_t fanout = static_cast<size_t>(
      std::max<int64_t>(2, (static_cast<int64_t>(group_blocks.size()) +
                            max_build - 1) /
                               max_build));
  // Grace groups run one at a time inside a (possibly parallel) per-group
  // task; spill I/O stays synchronous here unless a backend was injected.
  io::AsyncIo* async = spill.async_io;
  auto r_file = SpillFile::Create(spill.dir, async);
  if (!r_file.ok()) return r_file.status();
  auto s_file = SpillFile::Create(spill.dir, async);
  if (!s_file.ok()) return s_file.status();

  SpillMapPartial r_partial;
  SpillMapPartial s_partial;
  r_partial.chunks.resize(fanout);
  s_partial.chunks.resize(fanout);

  // Map one side into `fanout` hash partitions, one transient pin at a
  // time. Rows are pre-filtered by the side's predicates — equivalent to
  // the in-memory path, where HashIndex::AddBlock/Probe apply them.
  const auto map_side = [&](const BlockStore& store,
                            const std::vector<BlockId>& blocks, AttrId attr,
                            const PredicateSet& preds, SpillFile* file,
                            SpillMapPartial* partial,
                            bool meta_skip) -> Status {
    PartitionBuffers bufs(fanout, store.num_attrs(), spill.chunk_rows,
                          /*global_morsel=*/0, file, partial);
    Record scratch;
    for (BlockId id : blocks) {
      if (meta_skip && !preds.empty() && !store.MayMatchMeta(id, preds)) {
        ++out->s_blocks_skipped;
        obs::Count(obs::Counter::kBlocksSkippedMeta);
        continue;
      }
      auto blk = store.Get(id);
      if (!blk.ok()) return blk.status();
      const BlockRef pin = std::move(blk).ValueOrDie();
      cluster.ReadBlock(id, worker, &partial->io);
      ++partial->blocks_read;
      const SelectionVector sel = pin->FilterRows(preds);
      const Column& key_col = pin->column(attr);
      for (const uint32_t row : sel) {
        const size_t part = key_col.HashAt(row) % fanout;
        pin->GatherRecord(row, &scratch);
        ADB_RETURN_NOT_OK(bufs.AddRow(part, scratch));
      }
    }
    return bufs.FlushAll();
  };
  ADB_RETURN_NOT_OK(map_side(r_store, group_blocks, r_attr, r_preds,
                             r_file.ValueOrDie().get(), &r_partial,
                             /*meta_skip=*/false));
  ADB_RETURN_NOT_OK(map_side(s_store, probe_ids, s_attr, s_preds,
                             s_file.ValueOrDie().get(), &s_partial,
                             /*meta_skip=*/true));
  ADB_RETURN_NOT_OK(r_file.ValueOrDie()->Finish());
  ADB_RETURN_NOT_OK(s_file.ValueOrDie()->Finish());
  out->r_blocks_read += r_partial.blocks_read;
  out->s_blocks_read += s_partial.blocks_read;
  out->io.Merge(r_partial.io);
  out->io.Merge(s_partial.io);

  // Reduce: build+probe one hash partition at a time — peak residency is
  // one partition's decoded chunks, never the whole group.
  int64_t spilled = 0;
  for (size_t f = 0; f < fanout; ++f) {
    if (!r_partial.chunks[f].empty() || !s_partial.chunks[f].empty()) {
      ++spilled;
    }
    ADB_RETURN_NOT_OK(ReduceSpilledPartition(
        *r_file.ValueOrDie(), r_partial.chunks[f], r_attr,
        r_store.num_attrs(), *s_file.ValueOrDie(), s_partial.chunks[f],
        s_attr, s_store.num_attrs(), async, &out->counts, output, &out->io));
  }
  out->io.spilled_partitions += spilled;
  obs::Count(obs::Counter::kSpilledPartitions, spilled);
  return Status::OK();
}

}  // namespace exec
}  // namespace adaptdb
