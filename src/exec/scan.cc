#include "exec/scan.h"

#include <algorithm>

#include "obs/metrics.h"
#include "parallel/parallel_scan.h"

namespace adaptdb {

namespace {

/// Scan read-ahead window (the ROADMAP "prefetch" item, scan path only):
/// while the serial scan consumes one window of blocks, the next window is
/// loaded into the buffer pool (a no-op on the in-memory backend). Matches
/// the default morsel size, so "the next morsel's blocks" are in flight
/// before the current morsel finishes. The parallel driver's per-morsel
/// chunks are one window long, so read-ahead stays a serial-path feature —
/// parallel tasks already overlap their loads across threads.
constexpr size_t kScanPrefetchWindow = 8;

/// Issues the read-ahead for blocks[lo, hi): every block in the window that
/// survives the metadata skip test is handed to BlockStore::Prefetch.
/// Returns the number of blocks physically loaded (IoStats::prefetched).
int64_t PrefetchWindow(const BlockStore& store,
                       const std::vector<BlockId>& blocks, size_t lo,
                       size_t hi, const PredicateSet& preds,
                       bool skip_by_ranges) {
  if (lo >= hi) return 0;
  std::vector<BlockId> ahead;
  ahead.reserve(hi - lo);
  for (size_t j = lo; j < hi; ++j) {
    if (!skip_by_ranges || store.MayMatchMeta(blocks[j], preds)) {
      ahead.push_back(blocks[j]);
    }
  }
  return store.Prefetch(ahead);
}

}  // namespace

Result<AggregateResult> ScanAggregate(const BlockStore& store,
                                      const std::vector<BlockId>& blocks,
                                      const PredicateSet& preds,
                                      const ClusterSim& cluster, AttrId attr,
                                      AggFn fn, bool skip_by_ranges) {
  AggregateResult out;
  double sum = 0;
  bool have_extreme = false;
  Value extreme;
  const size_t n = blocks.size();
  const bool read_ahead = store.CanPrefetch();
  for (size_t i = 0; i < n; ++i) {
    const BlockId id = blocks[i];
    if (read_ahead && i % kScanPrefetchWindow == 0) {
      out.scan.io.prefetched +=
          PrefetchWindow(store, blocks, i + kScanPrefetchWindow,
                         std::min(n, i + 2 * kScanPrefetchWindow), preds,
                         skip_by_ranges);
    }
    // Metadata-only skip: no pin, no I/O for excluded blocks.
    if (skip_by_ranges && !store.MayMatchMeta(id, preds)) {
      ++out.scan.blocks_skipped;
      obs::Count(obs::Counter::kBlocksSkippedMeta);
      continue;
    }
    auto blk = store.Get(id);
    if (!blk.ok()) return blk.status();
    const BlockRef& b = blk.ValueOrDie();
    auto node = cluster.Locate(id);
    cluster.ReadBlock(id, node.ok() ? node.ValueOrDie() : 0, &out.scan.io);
    ++out.scan.blocks_read;
    // Column-at-a-time predicate evaluation; the aggregate then reads only
    // the aggregated attribute's column — rows are never materialized.
    const SelectionVector sel = b->FilterRows(preds);
    if (sel.empty()) continue;
    out.rows_aggregated += static_cast<int64_t>(sel.size());
    out.scan.rows_matched += static_cast<int64_t>(sel.size());
    const Column& col = b->column(attr);
    switch (fn) {
      case AggFn::kCount:
        break;
      case AggFn::kSum:
      case AggFn::kAvg: {
        if (col.mixed()) {
          for (const uint32_t row : sel) {
            const Value& v = col.values()[row];
            if (v.type() == DataType::kString) {
              return Status::InvalidArgument("sum/avg over string attribute");
            }
            sum += v.AsNumeric();
          }
        } else if (col.type() == DataType::kString) {
          return Status::InvalidArgument("sum/avg over string attribute");
        } else if (col.type() == DataType::kInt64) {
          for (const uint32_t row : sel) {
            sum += static_cast<double>(col.ints()[row]);
          }
        } else {
          for (const uint32_t row : sel) sum += col.doubles()[row];
        }
        break;
      }
      case AggFn::kMin:
        for (const uint32_t row : sel) {
          Value v = col.ValueAt(row);
          if (!have_extreme || v < extreme) extreme = std::move(v);
          have_extreme = true;
        }
        break;
      case AggFn::kMax:
        for (const uint32_t row : sel) {
          Value v = col.ValueAt(row);
          if (!have_extreme || extreme < v) extreme = std::move(v);
          have_extreme = true;
        }
        break;
    }
  }
  switch (fn) {
    case AggFn::kCount:
      out.value = Value(out.rows_aggregated);
      break;
    case AggFn::kSum:
      out.value = Value(sum);
      break;
    case AggFn::kAvg:
      out.value = out.rows_aggregated > 0
                      ? Value(sum / static_cast<double>(out.rows_aggregated))
                      : Value(int64_t{0});
      break;
    case AggFn::kMin:
    case AggFn::kMax:
      out.value = have_extreme ? extreme : Value(int64_t{0});
      break;
  }
  return out;
}

Result<ScanResult> ScanBlocks(const BlockStore& store,
                              const std::vector<BlockId>& blocks,
                              const PredicateSet& preds,
                              const ClusterSim& cluster,
                              bool skip_by_ranges) {
  ScanResult out;
  const size_t n = blocks.size();
  const bool read_ahead = store.CanPrefetch();
  for (size_t i = 0; i < n; ++i) {
    const BlockId id = blocks[i];
    if (read_ahead && i % kScanPrefetchWindow == 0) {
      out.io.prefetched +=
          PrefetchWindow(store, blocks, i + kScanPrefetchWindow,
                         std::min(n, i + 2 * kScanPrefetchWindow), preds,
                         skip_by_ranges);
    }
    // Metadata-only skip: no pin, no I/O for excluded blocks.
    if (skip_by_ranges && !store.MayMatchMeta(id, preds)) {
      ++out.blocks_skipped;
      obs::Count(obs::Counter::kBlocksSkippedMeta);
      continue;
    }
    auto blk = store.Get(id);
    if (!blk.ok()) return blk.status();
    const BlockRef& b = blk.ValueOrDie();
    auto node = cluster.Locate(id);
    const NodeId reader = node.ok() ? node.ValueOrDie() : 0;
    cluster.ReadBlock(id, reader, &out.io);
    ++out.blocks_read;
    // Column-at-a-time: only the predicate columns are touched; a counting
    // scan never gathers the remaining attributes at all.
    out.rows_matched += static_cast<int64_t>(b->CountMatches(preds));
  }
  return out;
}

Result<ScanResult> ScanBlocks(const BlockStore& store,
                              const std::vector<BlockId>& blocks,
                              const PredicateSet& preds,
                              const ClusterSim& cluster,
                              const ExecConfig& config, bool skip_by_ranges) {
  if (config.num_threads <= 1) {
    return ScanBlocks(store, blocks, preds, cluster, skip_by_ranges);
  }
  return ParallelScan(store, blocks, preds, cluster, config, skip_by_ranges);
}

Result<AggregateResult> ScanAggregate(const BlockStore& store,
                                      const std::vector<BlockId>& blocks,
                                      const PredicateSet& preds,
                                      const ClusterSim& cluster, AttrId attr,
                                      AggFn fn, const ExecConfig& config,
                                      bool skip_by_ranges) {
  // Always delegate: the driver applies the fixed morsel decomposition at
  // every thread count (inline when num_threads <= 1), which is what makes
  // kSum/kAvg float grouping — and hence the result — thread-count
  // invariant through this entry point.
  return ParallelScanAggregate(store, blocks, preds, cluster, attr, fn,
                               config, skip_by_ranges);
}

}  // namespace adaptdb
