#include "exec/scan.h"

#include "parallel/parallel_scan.h"

namespace adaptdb {

Result<AggregateResult> ScanAggregate(const BlockStore& store,
                                      const std::vector<BlockId>& blocks,
                                      const PredicateSet& preds,
                                      const ClusterSim& cluster, AttrId attr,
                                      AggFn fn, bool skip_by_ranges) {
  AggregateResult out;
  double sum = 0;
  bool have_extreme = false;
  Value extreme;
  for (BlockId id : blocks) {
    auto blk = store.Get(id);
    if (!blk.ok()) return blk.status();
    const BlockRef& b = blk.ValueOrDie();
    if (skip_by_ranges && !b->MayMatch(preds)) {
      ++out.scan.blocks_skipped;
      continue;
    }
    auto node = cluster.Locate(id);
    cluster.ReadBlock(id, node.ok() ? node.ValueOrDie() : 0, &out.scan.io);
    ++out.scan.blocks_read;
    for (const Record& rec : b->records()) {
      if (!MatchesAll(preds, rec)) continue;
      ++out.rows_aggregated;
      ++out.scan.rows_matched;
      const Value& v = rec[static_cast<size_t>(attr)];
      switch (fn) {
        case AggFn::kCount:
          break;
        case AggFn::kSum:
        case AggFn::kAvg:
          if (v.type() == DataType::kString) {
            return Status::InvalidArgument("sum/avg over string attribute");
          }
          sum += v.AsNumeric();
          break;
        case AggFn::kMin:
          if (!have_extreme || v < extreme) extreme = v;
          have_extreme = true;
          break;
        case AggFn::kMax:
          if (!have_extreme || extreme < v) extreme = v;
          have_extreme = true;
          break;
      }
    }
  }
  switch (fn) {
    case AggFn::kCount:
      out.value = Value(out.rows_aggregated);
      break;
    case AggFn::kSum:
      out.value = Value(sum);
      break;
    case AggFn::kAvg:
      out.value = out.rows_aggregated > 0
                      ? Value(sum / static_cast<double>(out.rows_aggregated))
                      : Value(int64_t{0});
      break;
    case AggFn::kMin:
    case AggFn::kMax:
      out.value = have_extreme ? extreme : Value(int64_t{0});
      break;
  }
  return out;
}

Result<ScanResult> ScanBlocks(const BlockStore& store,
                              const std::vector<BlockId>& blocks,
                              const PredicateSet& preds,
                              const ClusterSim& cluster,
                              bool skip_by_ranges) {
  ScanResult out;
  for (BlockId id : blocks) {
    auto blk = store.Get(id);
    if (!blk.ok()) return blk.status();
    const BlockRef& b = blk.ValueOrDie();
    if (skip_by_ranges && !b->MayMatch(preds)) {
      ++out.blocks_skipped;
      continue;
    }
    auto node = cluster.Locate(id);
    const NodeId reader = node.ok() ? node.ValueOrDie() : 0;
    cluster.ReadBlock(id, reader, &out.io);
    ++out.blocks_read;
    for (const Record& rec : b->records()) {
      if (MatchesAll(preds, rec)) ++out.rows_matched;
    }
  }
  return out;
}

Result<ScanResult> ScanBlocks(const BlockStore& store,
                              const std::vector<BlockId>& blocks,
                              const PredicateSet& preds,
                              const ClusterSim& cluster,
                              const ExecConfig& config, bool skip_by_ranges) {
  if (config.num_threads <= 1) {
    return ScanBlocks(store, blocks, preds, cluster, skip_by_ranges);
  }
  return ParallelScan(store, blocks, preds, cluster, config, skip_by_ranges);
}

Result<AggregateResult> ScanAggregate(const BlockStore& store,
                                      const std::vector<BlockId>& blocks,
                                      const PredicateSet& preds,
                                      const ClusterSim& cluster, AttrId attr,
                                      AggFn fn, const ExecConfig& config,
                                      bool skip_by_ranges) {
  // Always delegate: the driver applies the fixed morsel decomposition at
  // every thread count (inline when num_threads <= 1), which is what makes
  // kSum/kAvg float grouping — and hence the result — thread-count
  // invariant through this entry point.
  return ParallelScanAggregate(store, blocks, preds, cluster, attr, fn,
                               config, skip_by_ranges);
}

}  // namespace adaptdb
