/// \file spill.h
/// \brief Out-of-core join execution: spill files + the spilling shuffle
/// join and the hyper join's grace-hash fallback.
///
/// The in-memory shuffle join pins its entire input for the join's duration
/// (map-side row references point into pinned blocks), which defeats the
/// buffer budget on datasets larger than RAM. This module implements the
/// paper's actual shuffle: the map phase writes each destination
/// partition's filtered rows to a spill file as checksummed format-v2
/// chunks, and the reduce phase streams them back one partition at a time —
/// peak block residency is bounded by one morsel's pins plus one
/// partition's decoded build+probe chunks, independent of input size.
///
/// Determinism: the map decomposition is the same fixed morsel split as the
/// in-memory parallel driver, chunks are identified by (morsel, sequence)
/// and merged in morsel order, and the reduce probes partitions in order —
/// so rows, JoinCounts and the logical IoStats (including the new spill
/// counters) are bitwise identical at any thread count, on either storage
/// backend, and identical to the in-memory join.
///
/// Durability is explicitly *not* a goal: spill files are unlinked at
/// creation (the fd is the only reference), so a crash leaks nothing.

#ifndef ADAPTDB_EXEC_SPILL_H_
#define ADAPTDB_EXEC_SPILL_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/exec_config.h"
#include "exec/shuffle_join.h"
#include "io/async_io.h"
#include "storage/block.h"
#include "storage/block_store.h"
#include "storage/cluster.h"

namespace adaptdb::exec {

/// \brief Address of one encoded chunk within a SpillFile.
struct SpillChunk {
  uint64_t offset = 0;
  uint64_t length = 0;
  /// The chunk block's embedded id — (morsel << 32 | sequence), assigned
  /// deterministically by the writer and validated on read-back.
  BlockId chunk_id = 0;
  int64_t rows = 0;
};

/// \brief One anonymous temp file of encoded (format v2, checksummed) row
/// chunks.
///
/// Thread safety: AppendBlock may be called concurrently (offsets are
/// reserved under a mutex; the writes themselves proceed in parallel).
/// Finish() must be called — once, after all appends — before any
/// ReadChunk; it drains asynchronous writes and surfaces the first write
/// error. Reads are safe concurrently after Finish.
class SpillFile {
 public:
  /// Creates an unlinked temp file under `dir` (empty: the system temp
  /// directory, honoring $TMPDIR). `async` is an optional, non-owned
  /// backend for the writes; null makes appends synchronous.
  static Result<std::unique_ptr<SpillFile>> Create(const std::string& dir,
                                                   io::AsyncIo* async);

  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Encodes `block` and appends it, returning its chunk descriptor. With
  /// an async backend the write may still be in flight on return (the
  /// buffer is kept alive internally until completion).
  Result<SpillChunk> AppendBlock(const Block& block);

  /// Barrier: waits for outstanding writes, returns the first write error.
  Status Finish();

  /// Reads and decodes one chunk, validating the embedded checksum and the
  /// expected chunk id. Truncation and bit flips surface as Corruption.
  Result<Block> ReadChunk(const SpillChunk& chunk,
                          int32_t expected_attrs) const;

  /// Reads a chunk's raw encoded bytes (the async read-ahead path; decode
  /// with DecodeChunk).
  Status ReadChunkRaw(const SpillChunk& chunk, std::string* out) const;

  /// Decodes previously read chunk bytes, validating id + checksum.
  static Result<Block> DecodeChunk(const SpillChunk& chunk,
                                   const std::string& bytes,
                                   int32_t expected_attrs);

  /// Total encoded bytes appended so far.
  int64_t bytes_written() const;

  /// The underlying fd — fault-injection tests truncate or flip bytes
  /// through it.
  int fd_for_testing() const { return fd_; }

 private:
  SpillFile(int fd, io::AsyncIo* async) : fd_(fd), async_(async) {}

  int fd_ = -1;
  io::AsyncIo* async_ = nullptr;  ///< Not owned; null = synchronous writes.

  mutable std::mutex mu_;
  uint64_t size_ = 0;        ///< Append offset (reservations included).
  Status first_error_;       ///< First failed write, surfaced by Finish().
};

/// Shuffle join with map-side spilling (see file comment). Serves every
/// thread count itself: the morsel decomposition is fixed, morsels run
/// inline at num_threads <= 1 and on a TaskPool otherwise, and partials
/// merge in morsel/partition order either way. Invoked by the ShuffleJoin
/// ExecConfig overload when config.spill.enabled (after ApplySpillEnv).
Result<JoinExecResult> SpillingShuffleJoin(
    const BlockStore& r_store, const std::vector<BlockId>& r_blocks,
    AttrId r_attr, const PredicateSet& r_preds, const BlockStore& s_store,
    const std::vector<BlockId>& s_blocks, AttrId s_attr,
    const PredicateSet& s_preds, const ClusterSim& cluster,
    const ExecConfig& config, std::vector<Record>* output = nullptr);

/// Grace-hash fallback for one hyper-join group whose build side exceeds
/// the spill threshold: hash-partitions both sides into `fanout` spill
/// partitions, then builds+probes one partition at a time. Logical IoStats
/// (each R block and each probed S block read once) and JoinCounts are
/// identical to the in-memory group join; the *order* of materialized
/// output rows differs (partitioned), which the order-independent checksum
/// absorbs. Called by the serial HyperJoin per-group loop, so the parallel
/// driver inherits it unchanged.
Status GraceHashJoinGroup(const BlockStore& r_store, AttrId r_attr,
                          const PredicateSet& r_preds,
                          const BlockStore& s_store, AttrId s_attr,
                          const PredicateSet& s_preds,
                          const std::vector<BlockId>& group_blocks,
                          const std::vector<BlockId>& probe_ids,
                          const ClusterSim& cluster, NodeId worker,
                          const SpillConfig& spill, JoinExecResult* out,
                          std::vector<Record>* output);

}  // namespace adaptdb::exec

#endif  // ADAPTDB_EXEC_SPILL_H_
