/// \file exec_config.h
/// \brief Execution-engine configuration shared by all executors.

#ifndef ADAPTDB_EXEC_EXEC_CONFIG_H_
#define ADAPTDB_EXEC_EXEC_CONFIG_H_

#include <cstdint>

namespace adaptdb {

class TaskPool;

/// \brief Knobs of the (optionally parallel) execution engine.
///
/// Executors taking an ExecConfig run single-threaded when num_threads <= 1
/// and delegate to the src/parallel/ drivers otherwise. The parallel paths
/// are bitwise-deterministic: work is decomposed by fixed-size morsel (or
/// per group / per partition), independent of the thread count, and partial
/// results merge in serial execution order — so any thread count produces
/// the same output sequence and IoStats as one thread.
///
/// Caveat: the ExecConfig overload of ScanAggregate applies the fixed
/// morsel decomposition even at num_threads == 1 (that is what makes
/// kSum/kAvg over doubles thread-count-invariant), so its result can differ
/// in the last ulp from the legacy non-config overload's single running
/// sum. See scan.h for details.
struct ExecConfig {
  /// Worker threads for scans and joins. 1 executes serially (for
  /// ScanAggregate, serially over the same fixed morsels — see above).
  int32_t num_threads = 1;
  /// Blocks per scan/shuffle-map morsel. Fixed independently of
  /// num_threads so the work decomposition (and hence floating-point
  /// aggregation order) never varies with parallelism.
  int32_t morsel_blocks = 8;

  /// Optional shared worker pool. When set, parallel drivers run on it
  /// instead of spinning up (and tearing down) a transient pool per
  /// operator call; Database maintains one per instance, sized by
  /// num_threads. When null, each driver creates its own. The pool's
  /// thread count takes precedence over num_threads for scheduling (the
  /// work decomposition stays num_threads-independent either way).
  TaskPool* pool = nullptr;
};

}  // namespace adaptdb

#endif  // ADAPTDB_EXEC_EXEC_CONFIG_H_
