/// \file exec_config.h
/// \brief Execution-engine configuration shared by all executors.

#ifndef ADAPTDB_EXEC_EXEC_CONFIG_H_
#define ADAPTDB_EXEC_EXEC_CONFIG_H_

#include <cstdint>
#include <string>

namespace adaptdb {

class TaskPool;

namespace io {
class AsyncIo;
}  // namespace io

/// \brief Out-of-core (spilling) execution knobs.
///
/// When enabled, the shuffle join's map phase writes each destination
/// partition's rows to a checksummed spill file and the reduce phase
/// streams them back one partition at a time, so peak block residency is
/// bounded by one morsel's pins plus one partition's build+probe instead
/// of the whole input. The hyper join uses the same machinery as a
/// grace-hash fallback for groups whose build side exceeds
/// `max_build_blocks`. Results (rows, JoinCounts, logical IoStats) stay
/// bitwise identical to the in-memory path at any thread count.
struct SpillConfig {
  /// Master switch; off keeps the pin-everything in-memory join.
  bool enabled = false;
  /// Directory for spill files. Empty: the system temp directory. Files
  /// are unlinked at creation, so nothing survives a crash either way.
  std::string dir;
  /// Rows buffered per partition before a chunk is encoded and appended
  /// to the spill file. Fixed independently of num_threads (chunks are
  /// per-morsel, so the chunk sequence is decomposition-derived).
  int64_t chunk_rows = 4096;
  /// Hyper-join grace-hash threshold: groups whose build side has more
  /// blocks than this spill instead of building in memory. 0 disables the
  /// fallback (the default — plain `ADAPTDB_SPILL=1` affects only the
  /// shuffle join).
  int64_t max_build_blocks = 0;
  /// I/O threads for the join-owned AsyncIo doing spill writes and
  /// read-ahead. 0 makes all spill I/O synchronous.
  int32_t io_threads = 1;
  /// Test injection: when non-null, spill I/O uses this backend instead
  /// of creating one (not owned). Lets fault-injection tests fail or
  /// corrupt spill traffic deterministically.
  io::AsyncIo* async_io = nullptr;
};

/// \brief Knobs of the (optionally parallel) execution engine.
///
/// Executors taking an ExecConfig run single-threaded when num_threads <= 1
/// and delegate to the src/parallel/ drivers otherwise. The parallel paths
/// are bitwise-deterministic: work is decomposed by fixed-size morsel (or
/// per group / per partition), independent of the thread count, and partial
/// results merge in serial execution order — so any thread count produces
/// the same output sequence and IoStats as one thread.
///
/// Caveat: the ExecConfig overload of ScanAggregate applies the fixed
/// morsel decomposition even at num_threads == 1 (that is what makes
/// kSum/kAvg over doubles thread-count-invariant), so its result can differ
/// in the last ulp from the legacy non-config overload's single running
/// sum. See scan.h for details.
struct ExecConfig {
  /// Worker threads for scans and joins. 1 executes serially (for
  /// ScanAggregate, serially over the same fixed morsels — see above).
  int32_t num_threads = 1;
  /// Blocks per scan/shuffle-map morsel. Fixed independently of
  /// num_threads so the work decomposition (and hence floating-point
  /// aggregation order) never varies with parallelism.
  int32_t morsel_blocks = 8;

  /// Optional shared worker pool. When set, parallel drivers run on it
  /// instead of spinning up (and tearing down) a transient pool per
  /// operator call; Database maintains one per instance, sized by
  /// num_threads. When null, each driver creates its own. The pool's
  /// thread count takes precedence over num_threads for scheduling (the
  /// work decomposition stays num_threads-independent either way).
  TaskPool* pool = nullptr;

  /// Scan/aggregate morsel size target in *bytes* (adaptive morsel
  /// sizing). 0 (the default) keeps the fixed morsel_blocks decomposition.
  /// When > 0 and every block's SizeBytesHint is known, morsel boundaries
  /// are chosen so each morsel covers ≥1 block and at most ~morsel_bytes
  /// of payload — a pure function of block metadata, so the decomposition
  /// (and fp aggregation order) is still thread-count-independent. Falls
  /// back to morsel_blocks when any hint is unavailable.
  int64_t morsel_bytes = 0;

  /// Out-of-core execution knobs (see SpillConfig).
  SpillConfig spill;
};

/// Applies environment overrides to `spill` (used by CI to run suites with
/// spilling on without code changes):
///   ADAPTDB_SPILL=1|0              sets enabled
///   ADAPTDB_SPILL_ROWS=N           sets chunk_rows (N >= 1)
///   ADAPTDB_SPILL_BUILD_BLOCKS=N   sets max_build_blocks (N >= 0)
///   ADAPTDB_SPILL_IO_THREADS=N     sets io_threads (N >= 0)
///   ADAPTDB_SPILL_DIR=path         sets dir
SpillConfig ApplySpillEnv(SpillConfig spill);

}  // namespace adaptdb

#endif  // ADAPTDB_EXEC_EXEC_CONFIG_H_
