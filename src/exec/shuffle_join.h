/// \file shuffle_join.h
/// \brief The shuffle-join baseline executor (paper §4.2, "Shuffle Join").
///
/// Phase 1 reads every relevant block of both relations and hash-partitions
/// the filtered records across the cluster (accounted as shuffle I/O: write
/// to local spill + remote re-read). Phase 2 hash-joins each partition.
/// Total I/O per input block is therefore ~C_SJ = 3 block-costs.

#ifndef ADAPTDB_EXEC_SHUFFLE_JOIN_H_
#define ADAPTDB_EXEC_SHUFFLE_JOIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "exec/exec_config.h"
#include "exec/hash_join.h"
#include "storage/block_store.h"
#include "storage/cluster.h"

namespace adaptdb {

/// \brief One barrier-delimited phase of a join execution.
///
/// Measured on the *calling* thread around the phase's barrier, so phases
/// are sequential and their wall times sum to at most the executor's total
/// even when the work inside ran on many workers. `io` is the delta of the
/// result's IoStats accumulated during the phase; summed over all phases
/// it equals the executor's total exactly. The query profiler turns these
/// into child spans of the "execute" span.
struct ExecPhase {
  std::string name;        ///< "map" / "reduce" (shuffle), "build_probe"
                           ///< (hyper).
  double wall_seconds = 0;
  IoStats io;
  int64_t items = 0;  ///< Blocks mapped, partitions reduced, groups joined.
};

/// \brief Result of a distributed join execution.
struct JoinExecResult {
  JoinCounts counts;
  /// Blocks read from R / S (including repeat reads for hyper-join).
  int64_t r_blocks_read = 0;
  int64_t s_blocks_read = 0;
  /// Scheduled S reads the hyper-join skipped because the block's range
  /// metadata excluded the S-side predicates (no pin, no I/O). Always 0
  /// for the shuffle join (its map phase must read every block anyway).
  int64_t s_blocks_skipped = 0;
  IoStats io;
  /// Phase breakdown, in execution order (see ExecPhase).
  std::vector<ExecPhase> phases;
};

/// Executes R ⋈ S with a full shuffle. Predicates are applied before the
/// shuffle (map-side filtering, as Spark does). When `output` is non-null,
/// each matched pair is materialized as the concatenation r ++ s.
Result<JoinExecResult> ShuffleJoin(
    const BlockStore& r_store, const std::vector<BlockId>& r_blocks,
    AttrId r_attr, const PredicateSet& r_preds, const BlockStore& s_store,
    const std::vector<BlockId>& s_blocks, AttrId s_attr,
    const PredicateSet& s_preds, const ClusterSim& cluster,
    std::vector<Record>* output = nullptr);

/// ExecConfig entry point: serial at num_threads <= 1; otherwise a parallel
/// partition phase followed by per-destination build/probe tasks
/// (src/parallel/parallel_shuffle_join.h). Output sequence and IoStats are
/// identical at any thread count.
Result<JoinExecResult> ShuffleJoin(
    const BlockStore& r_store, const std::vector<BlockId>& r_blocks,
    AttrId r_attr, const PredicateSet& r_preds, const BlockStore& s_store,
    const std::vector<BlockId>& s_blocks, AttrId s_attr,
    const PredicateSet& s_preds, const ClusterSim& cluster,
    const ExecConfig& config, std::vector<Record>* output = nullptr);

}  // namespace adaptdb

#endif  // ADAPTDB_EXEC_SHUFFLE_JOIN_H_
