/// \file repartition.h
/// \brief The Type-2 repartitioning iterator (paper §6).
///
/// Reads source blocks, routes each record through a destination tree, and
/// appends it to the destination leaf blocks (HDFS-append semantics: several
/// repartitioners may extend the same file). Source blocks are deleted once
/// drained; all I/O is accounted.

#ifndef ADAPTDB_EXEC_REPARTITION_H_
#define ADAPTDB_EXEC_REPARTITION_H_

#include <vector>

#include "common/result.h"
#include "storage/block_store.h"
#include "storage/cluster.h"
#include "tree/partition_tree.h"

namespace adaptdb {

/// \brief What happens to drained source blocks.
///
/// Smooth repartitioning moves blocks *between trees that both stay alive*;
/// the drained block is an HDFS file still referenced as a leaf of its tree
/// and may be re-filled by a later migration, so it is kept empty (kClear).
/// The Amoeba adapter replaces a subtree wholesale; its old leaves are no
/// longer referenced anywhere and are deleted (kDelete).
enum class SourceDisposition {
  kClear,
  kDelete,
};

/// \brief Outcome of a repartitioning pass.
struct RepartitionResult {
  int64_t records_moved = 0;
  /// Source blocks emptied (and, under kDelete, removed).
  int64_t sources_drained = 0;
  /// Destination blocks that received records.
  std::vector<BlockId> touched_blocks;
  IoStats io;
};

/// Moves every record of `source_blocks` into the leaves of `dest_tree`.
/// Fails without side effects if any source block is itself a leaf of the
/// destination tree (migration must be between distinct trees/subtrees).
Result<RepartitionResult> RepartitionBlocks(
    BlockStore* store, const std::vector<BlockId>& source_blocks,
    const PartitionTree& dest_tree, ClusterSim* cluster,
    SourceDisposition disposition = SourceDisposition::kClear);

}  // namespace adaptdb

#endif  // ADAPTDB_EXEC_REPARTITION_H_
