#include "exec/hash_join.h"

#include <functional>

namespace adaptdb {

size_t HashValue(const Value& v) {
  switch (v.type()) {
    case DataType::kInt64:
      return std::hash<int64_t>{}(v.AsInt64());
    case DataType::kDouble:
      return std::hash<double>{}(v.AsDouble());
    case DataType::kString:
      return std::hash<std::string>{}(v.AsString());
  }
  return 0;
}

void HashIndex::AddBlock(const Block& block, const PredicateSet& preds) {
  const SelectionVector sel = block.FilterRows(preds);
  if (sel.empty()) return;
  const Column& key_col = block.column(attr_);
  for (const uint32_t row : sel) {
    // Heterogeneous find-before-emplace: a Value (string copy on string
    // keys) materializes only when the key is first seen, not per build
    // row — on dictionary columns the lookup hashes/compares through the
    // dictionary without touching a string at all.
    auto it = buckets_.find(ColumnKey{&key_col, row});
    if (it == buckets_.end()) {
      it = buckets_.emplace(key_col.ValueAt(row), std::vector<RowRef>{})
               .first;
    }
    it->second.push_back(RowRef::OfBlock(&block, row));
    ++build_rows_;
  }
}

void HashIndex::AddRecords(const std::vector<Record>& records,
                           const PredicateSet& preds) {
  for (const Record& rec : records) {
    if (!MatchesAll(preds, rec)) continue;
    buckets_[rec[static_cast<size_t>(attr_)]].push_back(
        RowRef::OfRecord(&rec));
    ++build_rows_;
  }
}

void HashIndex::EmitMatches(const std::vector<RowRef>& bucket,
                            size_t key_hash, const RowRef& probe,
                            JoinCounts* counts,
                            std::vector<Record>* output) const {
  counts->output_rows += static_cast<int64_t>(bucket.size());
  counts->checksum += static_cast<uint64_t>(bucket.size()) *
                      (static_cast<uint64_t>(key_hash) | 1);
  if (output != nullptr) {
    for (const RowRef& build : bucket) {
      Record joined;
      build.AppendTo(&joined);
      probe.AppendTo(&joined);
      output->push_back(std::move(joined));
    }
  }
}

void HashIndex::ProbeRecord(const Record& probe, AttrId probe_attr,
                            JoinCounts* counts,
                            std::vector<Record>* output) const {
  const Value& key = probe[static_cast<size_t>(probe_attr)];
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  EmitMatches(it->second, HashValue(key), RowRef::OfRecord(&probe), counts,
              output);
}

void HashIndex::Probe(const Block& block, AttrId probe_attr,
                      const PredicateSet& preds, JoinCounts* counts,
                      std::vector<Record>* output) const {
  const SelectionVector sel = block.FilterRows(preds);
  if (sel.empty()) return;
  const Column& key_col = block.column(probe_attr);
  for (const uint32_t row : sel) {
    // Heterogeneous lookup: the probe key is read in place from the key
    // column; no Value materializes unless the row actually matches and
    // output rows gather.
    auto it = buckets_.find(ColumnKey{&key_col, row});
    if (it == buckets_.end()) continue;
    EmitMatches(it->second, key_col.HashAt(row), RowRef::OfBlock(&block, row),
                counts, output);
  }
}

void HashIndex::Clear() {
  buckets_.clear();
  build_rows_ = 0;
}

}  // namespace adaptdb
