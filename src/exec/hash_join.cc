#include "exec/hash_join.h"

#include <functional>

namespace adaptdb {

size_t HashValue(const Value& v) {
  switch (v.type()) {
    case DataType::kInt64:
      return std::hash<int64_t>{}(v.AsInt64());
    case DataType::kDouble:
      return std::hash<double>{}(v.AsDouble());
    case DataType::kString:
      return std::hash<std::string>{}(v.AsString());
  }
  return 0;
}

void HashIndex::AddBlock(const Block& block, const PredicateSet& preds) {
  for (const Record& rec : block.records()) {
    if (!MatchesAll(preds, rec)) continue;
    buckets_[rec[static_cast<size_t>(attr_)]].push_back(&rec);
    ++build_rows_;
  }
}

void HashIndex::AddRecords(const std::vector<Record>& records,
                           const PredicateSet& preds) {
  for (const Record& rec : records) {
    if (!MatchesAll(preds, rec)) continue;
    buckets_[rec[static_cast<size_t>(attr_)]].push_back(&rec);
    ++build_rows_;
  }
}

void HashIndex::ProbeRecord(const Record& probe, AttrId probe_attr,
                            JoinCounts* counts,
                            std::vector<Record>* output) const {
  const Value& key = probe[static_cast<size_t>(probe_attr)];
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  const auto& bucket = it->second;
  counts->output_rows += static_cast<int64_t>(bucket.size());
  counts->checksum += static_cast<uint64_t>(bucket.size()) *
                      (static_cast<uint64_t>(HashValue(key)) | 1);
  if (output != nullptr) {
    for (const Record* build : bucket) {
      Record joined = *build;
      joined.insert(joined.end(), probe.begin(), probe.end());
      output->push_back(std::move(joined));
    }
  }
}

void HashIndex::Probe(const Block& block, AttrId probe_attr,
                      const PredicateSet& preds, JoinCounts* counts,
                      std::vector<Record>* output) const {
  for (const Record& rec : block.records()) {
    if (!MatchesAll(preds, rec)) continue;
    ProbeRecord(rec, probe_attr, counts, output);
  }
}

void HashIndex::Clear() {
  buckets_.clear();
  build_rows_ = 0;
}

}  // namespace adaptdb
