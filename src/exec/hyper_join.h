/// \file hyper_join.h
/// \brief The hyper-join executor (paper §4.1).
///
/// Given a grouping of R's blocks (see join/grouping.h), each group builds
/// one hash table on a worker chosen for locality, then probes it with every
/// S block whose range overlaps the group. No shuffle occurs; S blocks may
/// be read by multiple groups (that repetition is exactly the C_HyJ factor
/// of the cost model).

#ifndef ADAPTDB_EXEC_HYPER_JOIN_H_
#define ADAPTDB_EXEC_HYPER_JOIN_H_

#include "common/result.h"
#include "exec/exec_config.h"
#include "exec/shuffle_join.h"
#include "join/grouping.h"
#include "join/overlap.h"

namespace adaptdb {

/// Executes R ⋈ S as a hyper-join under `grouping`.
/// \param overlap  overlap matrix whose r_blocks/s_blocks name the inputs
/// \param grouping partitioning of overlap.r_blocks indices, each group
///                 fitting the memory budget
/// When `output` is non-null, each matched pair is materialized as the
/// concatenation r ++ s.
Result<JoinExecResult> HyperJoin(const BlockStore& r_store, AttrId r_attr,
                                 const PredicateSet& r_preds,
                                 const BlockStore& s_store, AttrId s_attr,
                                 const PredicateSet& s_preds,
                                 const OverlapMatrix& overlap,
                                 const Grouping& grouping,
                                 const ClusterSim& cluster,
                                 std::vector<Record>* output = nullptr);

/// Serial executor with out-of-core support: groups whose build side
/// exceeds spill.max_build_blocks grace-hash-partition both sides to spill
/// files and join one hash partition at a time (exec/spill.h) instead of
/// pinning the whole build side. Logical IoStats and JoinCounts are
/// identical to the in-memory path; materialized output row *order* within
/// a grace group differs (partitioned). The parallel driver runs this per
/// group, so the fallback behaves identically at any thread count.
Result<JoinExecResult> HyperJoin(const BlockStore& r_store, AttrId r_attr,
                                 const PredicateSet& r_preds,
                                 const BlockStore& s_store, AttrId s_attr,
                                 const PredicateSet& s_preds,
                                 const OverlapMatrix& overlap,
                                 const Grouping& grouping,
                                 const ClusterSim& cluster,
                                 const SpillConfig& spill,
                                 std::vector<Record>* output);

/// ExecConfig entry point: serial at num_threads <= 1, one task per group
/// on a work-stealing pool otherwise (src/parallel/parallel_hyper_join.h).
/// Output sequence and IoStats are identical at any thread count. Applies
/// ApplySpillEnv to config.spill before dispatching.
Result<JoinExecResult> HyperJoin(const BlockStore& r_store, AttrId r_attr,
                                 const PredicateSet& r_preds,
                                 const BlockStore& s_store, AttrId s_attr,
                                 const PredicateSet& s_preds,
                                 const OverlapMatrix& overlap,
                                 const Grouping& grouping,
                                 const ClusterSim& cluster,
                                 const ExecConfig& config,
                                 std::vector<Record>* output = nullptr);

}  // namespace adaptdb

#endif  // ADAPTDB_EXEC_HYPER_JOIN_H_
