/// \file scan.h
/// \brief Predicate scans over block sets with I/O accounting.

#ifndef ADAPTDB_EXEC_SCAN_H_
#define ADAPTDB_EXEC_SCAN_H_

#include <vector>

#include "common/result.h"
#include "exec/exec_config.h"
#include "schema/predicate.h"
#include "storage/block_store.h"
#include "storage/cluster.h"

namespace adaptdb {

/// \brief Result of a scan: matched rows plus the I/O it cost.
struct ScanResult {
  int64_t rows_matched = 0;
  int64_t blocks_read = 0;
  /// Blocks skipped by range metadata before being read.
  int64_t blocks_skipped = 0;
  IoStats io;
};

/// Scans `blocks`, filtering by `preds`. Tasks are scheduled on the node
/// holding each block (HDFS-style locality), so reads are local. Blocks
/// whose range metadata excludes the predicates are skipped without I/O
/// when `skip_by_ranges` is set.
Result<ScanResult> ScanBlocks(const BlockStore& store,
                              const std::vector<BlockId>& blocks,
                              const PredicateSet& preds,
                              const ClusterSim& cluster,
                              bool skip_by_ranges = true);

/// ExecConfig entry point: runs the serial scan at num_threads <= 1 and the
/// morsel-parallel driver (src/parallel/parallel_scan.h) otherwise.
/// Results are identical at any thread count.
Result<ScanResult> ScanBlocks(const BlockStore& store,
                              const std::vector<BlockId>& blocks,
                              const PredicateSet& preds,
                              const ClusterSim& cluster,
                              const ExecConfig& config,
                              bool skip_by_ranges = true);

/// \brief Aggregate functions supported by the scan path (the map-side
/// combiner of the paper's Fig. 7 micro-benchmark; results surface as the
/// "more complex analysis on top of the returned RDDs" of §6).
enum class AggFn {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
};

/// \brief An aggregate result with the scan's I/O statistics.
struct AggregateResult {
  /// The aggregate value; min/max preserve the attribute's type, sum/avg
  /// are numeric, count is int64. Int64 0 when no row matched (count 0).
  Value value;
  int64_t rows_aggregated = 0;
  ScanResult scan;
};

/// Scans and aggregates `fn` over `attr` of the records matching `preds`.
/// For kMin/kMax the attribute may be any ordered type; kSum/kAvg require a
/// numeric attribute.
Result<AggregateResult> ScanAggregate(const BlockStore& store,
                                      const std::vector<BlockId>& blocks,
                                      const PredicateSet& preds,
                                      const ClusterSim& cluster, AttrId attr,
                                      AggFn fn, bool skip_by_ranges = true);

/// ExecConfig entry point for ScanAggregate. Results are identical at any
/// thread count: the driver applies the same fixed morsel decomposition
/// whether it runs inline (num_threads <= 1) or on the pool. Caveat: for
/// kSum/kAvg over kDouble attributes the morsel-grouped summation may
/// differ in the last ulp from the *legacy* overload above (which keeps a
/// single running sum); integer attributes are always bit-identical.
Result<AggregateResult> ScanAggregate(const BlockStore& store,
                                      const std::vector<BlockId>& blocks,
                                      const PredicateSet& preds,
                                      const ClusterSim& cluster, AttrId attr,
                                      AggFn fn, const ExecConfig& config,
                                      bool skip_by_ranges = true);

}  // namespace adaptdb

#endif  // ADAPTDB_EXEC_SCAN_H_
