/// \file kernels.h
/// \brief Dispatch-once predicate kernels over contiguous typed columns.
///
/// Column::MatchesAt re-runs the (op × type) dispatch switch for every row
/// of a scan. These kernels hoist that dispatch out of the loop: each
/// public entry point resolves the (comparison op × column type ×
/// constant type) combination exactly once, binds the constant into a
/// tiny comparison lambda, and runs one of four branch-light loop shells
/// over the raw typed vector — a shape the compiler auto-vectorizes.
///
/// Semantics are bitwise identical to the row-at-a-time path. That
/// contract has three load-bearing pieces:
///   - Mixed int64/double predicates replicate ApplyOpMixedNumeric:
///     ordering widens both sides to double, `<=` behaves as `<` and `>=`
///     as `>` (cross-type equality is always false), kEq matches nothing,
///     kNeq everything.
///   - Dictionary-resident string columns never materialize or compare
///     strings per row: equality predicates resolve the constant to a
///     code once (absent → match none / all), ordered predicates
///     precompute a per-dictionary-entry match bitmap, and the loop
///     compares uint32 codes / indexes the bitmap.
///   - Supported() rejects every combination the kernels do not model —
///     mixed/untyped columns and cross string/numeric comparisons — so
///     callers keep the exact MatchesAt fallback behavior there
///     (including its debug-build asserts).
///
/// `ADAPTDB_NO_KERNELS=1` disables the layer process-wide (read once,
/// cached); SetEnabled() overrides it for in-process A/B parity tests.
/// Callers are responsible for consulting Enabled() — the kernels
/// themselves always run when invoked.

#ifndef ADAPTDB_EXEC_KERNELS_H_
#define ADAPTDB_EXEC_KERNELS_H_

#include <cstddef>

#include "schema/predicate.h"
#include "storage/block.h"
#include "storage/column.h"

namespace adaptdb {
namespace kernels {

/// True unless the layer is disabled (ADAPTDB_NO_KERNELS=1 in the
/// environment, read once at first call, or SetEnabled(false)).
bool Enabled();

/// Overrides the kill switch for this process (A/B parity testing).
void SetEnabled(bool on);

/// True iff the kernels model (`col`, `pred`) exactly: a typed,
/// non-mixed column compared against a constant of a compatible type
/// (same type, or int64/double in either order). Everything else must
/// take the MatchesAt fallback.
bool Supported(const Column& col, const Predicate& pred);

/// Full-column sweep: fills `*sel` with every row of `col` satisfying
/// `pred`, ascending. `*sel`'s previous contents are discarded.
/// Precondition: Supported(col, pred).
void FilterFull(const Predicate& pred, const Column& col,
                SelectionVector* sel);

/// Gather-refine: narrows `*sel` (ascending row indices into `col`) to
/// the rows satisfying `pred`, in place, preserving order.
/// Precondition: Supported(col, pred).
void FilterRefine(const Predicate& pred, const Column& col,
                  SelectionVector* sel);

/// Count-only full sweep: the number of rows of `col` satisfying `pred`.
/// Precondition: Supported(col, pred).
size_t CountFull(const Predicate& pred, const Column& col);

/// Count-only refine: how many rows listed in `sel` satisfy `pred`.
/// Precondition: Supported(col, pred).
size_t CountRefine(const Predicate& pred, const Column& col,
                   const SelectionVector& sel);

}  // namespace kernels
}  // namespace adaptdb

#endif  // ADAPTDB_EXEC_KERNELS_H_
