#include "exec/repartition.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

namespace adaptdb {

Result<RepartitionResult> RepartitionBlocks(
    BlockStore* store, const std::vector<BlockId>& source_blocks,
    const PartitionTree& dest_tree, ClusterSim* cluster,
    SourceDisposition disposition) {
  if (store == nullptr || cluster == nullptr) {
    return Status::InvalidArgument("null store/cluster");
  }
  const std::vector<BlockId> dest_leaves = dest_tree.Leaves();
  std::unordered_set<BlockId> dest_set(dest_leaves.begin(), dest_leaves.end());
  std::unordered_set<BlockId> seen_sources;
  for (BlockId src : source_blocks) {
    if (dest_set.count(src) > 0) {
      return Status::InvalidArgument(
          "source block " + std::to_string(src) +
          " is a leaf of the destination tree");
    }
    if (!seen_sources.insert(src).second) {
      return Status::InvalidArgument("duplicate source block " +
                                     std::to_string(src));
    }
    if (!store->Contains(src)) {
      return Status::NotFound("source block " + std::to_string(src));
    }
  }
  for (BlockId leaf : dest_leaves) {
    if (!store->Contains(leaf)) {
      return Status::NotFound("destination leaf block " +
                              std::to_string(leaf));
    }
  }

  RepartitionResult out;
  std::unordered_set<BlockId> touched;
  for (BlockId src : source_blocks) {
    // A mutable pin: the source is drained (cleared or deleted) below, and
    // holding the pin keeps it resident while destination pins churn
    // through the buffer pool.
    auto blk = store->GetMutable(src);
    if (!blk.ok()) return blk.status();
    const MutableBlockRef& b = blk.ValueOrDie();
    auto node = cluster->Locate(src);
    cluster->ReadBlock(src, node.ok() ? node.ValueOrDie() : 0, &out.io);
    // Route the whole source block, then append with one mutable pin per
    // destination leaf (per-record pins thrash a small buffer pool). Rows
    // are gathered from the columnar source one at a time into a reused
    // scratch record; per_leaf keeps row indices so each destination
    // append preserves source row order (block contents bit-identical to
    // the row-major engine's).
    std::map<BlockId, std::vector<uint32_t>> per_leaf;
    Record scratch;
    for (size_t row = 0; row < b->num_records(); ++row) {
      b->GatherRecord(row, &scratch);
      auto leaf = dest_tree.Route(scratch);
      if (!leaf.ok()) return leaf.status();
      per_leaf[leaf.ValueOrDie()].push_back(static_cast<uint32_t>(row));
      ++out.records_moved;
    }
    for (const auto& [leaf, rows] : per_leaf) {
      auto dest = store->GetMutable(leaf);
      if (!dest.ok()) return dest.status();
      for (const uint32_t row : rows) {
        b->GatherRecord(row, &scratch);
        dest.ValueOrDie()->Add(scratch);
      }
      touched.insert(leaf);
    }
    // The moved data is rewritten once (buffered HDFS appends, §6).
    cluster->WriteBlocks(1, &out.io);
    if (disposition == SourceDisposition::kDelete) {
      ADB_RETURN_NOT_OK(store->Delete(src));
      cluster->Evict(src);
    } else {
      b->ClearRecords();
    }
    ++out.sources_drained;
  }
  out.touched_blocks.assign(touched.begin(), touched.end());
  std::sort(out.touched_blocks.begin(), out.touched_blocks.end());
  return out;
}

}  // namespace adaptdb
