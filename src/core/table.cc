#include "core/table.h"

#include <algorithm>
#include <map>
#include <utility>

namespace adaptdb {

Table::Table(std::string name, Schema schema, TableOptions options,
             std::unique_ptr<BlockStore> store)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      options_(options),
      store_(store != nullptr
                 ? std::move(store)
                 : std::make_unique<MemBlockStore>(schema_.num_attrs())),
      sample_(options.sample_capacity, options.seed) {}

std::string Table::DescribeLayout() const {
  // One snapshot for the whole description, so the reported trees are a
  // consistent version even if adaptation installs a new one mid-dump.
  const TreeSnapshotRef snap = trees_.Snapshot();
  std::string out = "table " + name_ + " (" + schema_.ToString() + ")\n";
  for (AttrId attr : snap->Attrs()) {
    auto tree = snap->Tree(attr);
    if (!tree.ok()) continue;
    const PartitionTree* t = tree.ValueOrDie();
    const auto live = snap->LiveLeaves(attr, *store_);
    out += "  tree ";
    if (attr == kUpfrontTree) {
      out += "upfront";
    } else {
      out += "join=" + schema_.field(attr).name;
    }
    out += ": depth " + std::to_string(t->Depth()) + ", join_levels " +
           std::to_string(t->join_levels()) + ", " +
           std::to_string(live.size()) + " live blocks, " +
           std::to_string(snap->RecordsUnder(attr, *store_)) + " records\n";
    out += "    " + t->Serialize() + "\n";
  }
  return out;
}

Status Table::Append(const std::vector<Record>& records, ClusterSim* cluster,
                     IoStats* io) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (trees_.size() == 0) {
    return Status::InvalidArgument("table '" + name_ + "' not loaded");
  }
  if (!records.empty()) {
    ADB_RETURN_NOT_OK(schema_.ValidateRecord(records.front()));
  }
  // Route into the tree holding the most data (the primary layout).
  AttrId target = kUpfrontTree;
  int64_t best = -1;
  for (AttrId a : trees_.Attrs()) {
    const int64_t n = trees_.RecordsUnder(a, *store_);
    if (n > best) {
      best = n;
      target = a;
    }
  }
  auto tree = std::as_const(trees_).Tree(target);
  if (!tree.ok()) return tree.status();
  // Route first, append with one mutable pin per leaf (per-record pins
  // thrash a small buffer pool); the sample sees records in input order.
  std::map<BlockId, std::vector<const Record*>> per_leaf;
  for (const Record& rec : records) {
    auto leaf = tree.ValueOrDie()->Route(rec);
    if (!leaf.ok()) return leaf.status();
    per_leaf[leaf.ValueOrDie()].push_back(&rec);
    sample_.Add(rec);
  }
  for (const auto& [leaf, recs] : per_leaf) {
    auto block = store_->GetMutable(leaf);
    if (!block.ok()) return block.status();
    for (const Record* rec : recs) block.ValueOrDie()->Add(*rec);
  }
  // Appends are durable (the accounting below already charges durable
  // writes); flushing here also surfaces storage errors at the append
  // instead of at some later eviction.
  ADB_RETURN_NOT_OK(store_->Flush());
  if (io != nullptr && !records.empty()) {
    const int64_t avg_block_records = std::max<int64_t>(
        1, static_cast<int64_t>(store_->TotalRecords() /
                                std::max<size_t>(1, store_->num_blocks())));
    const int64_t block_equivalents = std::max<int64_t>(
        1, static_cast<int64_t>(records.size()) / avg_block_records);
    cluster->WriteBlocks(block_equivalents, io);
  }
  return Status::OK();
}

Status Table::Load(const std::vector<Record>& records, ClusterSim* cluster) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (records.empty()) return Status::InvalidArgument("no records");
  ADB_RETURN_NOT_OK(schema_.ValidateRecord(records.front()));
  sample_.AddAll(records);

  UpfrontOptions opts;
  opts.num_levels = options_.upfront_levels;
  opts.attrs = options_.upfront_attrs;
  opts.seed = options_.seed;
  UpfrontPartitioner partitioner(schema_, opts);
  auto tree = partitioner.Build(sample_, store_.get());
  if (!tree.ok()) return tree.status();
  ADB_RETURN_NOT_OK(LoadRecords(records, tree.ValueOrDie(), store_.get()));
  for (BlockId b : tree.ValueOrDie().Leaves()) {
    cluster->PlaceBlock(b);
  }
  trees_.Add(kUpfrontTree, std::move(tree).ValueOrDie());
  return Status::OK();
}

}  // namespace adaptdb
