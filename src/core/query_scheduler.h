/// \file query_scheduler.h
/// \brief FIFO admission control for concurrent query serving.
///
/// The scheduler multiplexes the engine across in-flight queries: callers
/// take a ticket, are admitted strictly in arrival order, and optionally
/// wait when a maximum number of queries is already in flight. Admission is
/// RAII — dropping the Admission releases the slot and wakes the next
/// ticket — so a query that fails mid-execution can never leak a slot.
/// Queue depth and in-flight counts feed Database::Stats().

#ifndef ADAPTDB_CORE_QUERY_SCHEDULER_H_
#define ADAPTDB_CORE_QUERY_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace adaptdb {

/// \brief FIFO ticket lock with an optional concurrency cap.
///
/// Thread safety: all methods may be called from any thread.
class QueryScheduler {
 public:
  /// `max_in_flight` <= 0 means unlimited (admission still FIFO, so a
  /// burst of arrivals starts executing in arrival order).
  explicit QueryScheduler(int32_t max_in_flight = 0)
      : limit_(max_in_flight) {}

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// \brief An admitted slot; releases on destruction.
  class Admission {
   public:
    Admission() = default;
    explicit Admission(QueryScheduler* owner) : owner_(owner) {}
    Admission(Admission&& other) noexcept : owner_(other.owner_) {
      other.owner_ = nullptr;
    }
    Admission& operator=(Admission&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    ~Admission() { Release(); }

   private:
    void Release() {
      if (owner_ != nullptr) owner_->Release();
      owner_ = nullptr;
    }
    QueryScheduler* owner_ = nullptr;
  };

  /// Blocks until this caller's ticket reaches the head of the queue and a
  /// slot is free, then admits it.
  Admission Admit();

  /// Queries currently admitted and not yet released.
  int64_t InFlight() const;

  /// Callers waiting for admission.
  int64_t QueueDepth() const;

  /// Total queries ever admitted.
  int64_t TotalAdmitted() const;

 private:
  friend class Admission;
  void Release();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const int64_t limit_;
  int64_t next_ticket_ = 0;   ///< Next ticket to hand out.
  int64_t front_ticket_ = 0;  ///< Ticket currently eligible for admission.
  int64_t in_flight_ = 0;
  int64_t total_admitted_ = 0;
};

}  // namespace adaptdb

#endif  // ADAPTDB_CORE_QUERY_SCHEDULER_H_
