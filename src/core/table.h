/// \file table.h
/// \brief A managed table: schema, blocks, sample, partitioning trees.

#ifndef ADAPTDB_CORE_TABLE_H_
#define ADAPTDB_CORE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "adapt/tree_set.h"
#include "common/result.h"
#include "planner/join_planner.h"
#include "sample/reservoir.h"
#include "storage/cluster.h"
#include "tree/upfront_partitioner.h"

namespace adaptdb {

/// \brief Per-table configuration.
struct TableOptions {
  /// Depth of the initial upfront tree (up to 2^levels blocks, §3.1).
  int32_t upfront_levels = 6;
  /// Reservoir sample size used for all cut-point decisions.
  size_t sample_capacity = 2000;
  /// Seed for sampling and upfront attribute assignment.
  uint64_t seed = 11;
  /// Candidate attributes for the upfront tree; empty = all.
  std::vector<AttrId> upfront_attrs;
};

/// \brief One table under AdaptDB management.
class Table {
 public:
  /// `store` selects the storage backend (see io/storage_config.h); null
  /// falls back to the in-memory MemBlockStore.
  Table(std::string name, Schema schema, TableOptions options,
        std::unique_ptr<BlockStore> store = nullptr);

  /// Ingests `records`: samples them, builds the upfront tree, routes all
  /// rows into blocks and places the blocks across `cluster`.
  Status Load(const std::vector<Record>& records, ClusterSim* cluster);

  /// Appends new records to an already-loaded table (the online-ingestion
  /// path of the paper's §8: "new tuples ... can be appended to the
  /// corresponding data blocks based on the partitioning trees"). Records
  /// route through the tree currently holding the most data; the sample is
  /// refreshed so future cut-point decisions see the new distribution.
  /// Accounts one durable block write per block-equivalent appended.
  Status Append(const std::vector<Record>& records, ClusterSim* cluster,
                IoStats* io = nullptr);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const TableOptions& options() const { return options_; }
  BlockStore* store() { return store_.get(); }
  const BlockStore& store() const { return *store_; }
  TreeSet* trees() { return &trees_; }
  const TreeSet& trees() const { return trees_; }
  const Reservoir& sample() const { return sample_; }

  /// Total live records.
  int64_t num_records() const {
    return static_cast<int64_t>(store_->TotalRecords());
  }

  /// The planner-facing view of this table. Captures the current tree
  /// snapshot, so the plan built from it reads one consistent tree version
  /// no matter what adaptation installs afterwards.
  TableContext Context() {
    return TableContext{name_, &schema_, store_.get(), &trees_,
                        trees_.Snapshot()};
  }

  /// Human-readable layout summary: one line per partitioning tree with its
  /// join attribute, depth, live block/record counts, plus the serialized
  /// tree structure (the Fig. 2 "index" metadata).
  std::string DescribeLayout() const;

 private:
  std::string name_;
  Schema schema_;
  TableOptions options_;
  std::unique_ptr<BlockStore> store_;
  TreeSet trees_;
  Reservoir sample_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_CORE_TABLE_H_
