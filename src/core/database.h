/// \file database.h
/// \brief The AdaptDB storage manager facade (paper Fig. 2).
///
/// A Database owns the simulated cluster, the tables, the query window, the
/// adaptive optimizer and the query planner. Running a query performs the
/// full per-query loop:
///   1. append the query to the window,
///   2. adapt each referenced table (smooth repartitioning between join
///      trees + Amoeba refinement of selection levels), folding the
///      repartitioning I/O into this query's latency, and
///   3. plan and execute the query (hyper-join vs shuffle join by cost).
///
/// Baselines are expressed as configuration: disable adaptation for static
/// layouts, force shuffle joins, ignore partitioning for full scans, or
/// enable full (non-smooth) repartitioning.

#ifndef ADAPTDB_CORE_DATABASE_H_
#define ADAPTDB_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "adapt/optimizer.h"
#include "adapt/query_window.h"
#include "core/table.h"
#include "planner/join_planner.h"

namespace adaptdb {

class TaskPool;

/// \brief Whole-system configuration.
struct DatabaseOptions {
  ClusterConfig cluster;
  AdaptConfig adapt;
  PlannerConfig planner;
  /// Master switch for the adaptive loop (step 2 above).
  bool adapt_enabled = true;
};

/// \brief The top-level AdaptDB object.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();

  /// Creates a table and ingests `records` through the upfront partitioner.
  Status CreateTable(const std::string& name, Schema schema,
                     const std::vector<Record>& records,
                     TableOptions table_options = {});

  /// Fetches a table by name.
  Result<Table*> GetTable(const std::string& name);

  /// Runs one query through the adapt → plan → execute loop, returning row
  /// counts, I/O and the simulated latency (including adaptation overhead).
  Result<QueryRunResult> RunQuery(const Query& q);

  /// Appends new rows to a loaded table (online ingestion, §8): records
  /// route through the table's primary partitioning tree and become visible
  /// to subsequent queries.
  Status AppendRows(const std::string& table,
                    const std::vector<Record>& records);

  /// The simulated cluster (placement, cost accounting).
  ClusterSim* cluster() { return &cluster_; }
  /// The recent query window.
  QueryWindow* window() { return &window_; }
  /// Planner configuration (mutable for baselines/ablations).
  PlannerConfig* mutable_planner_config() {
    return planner_.mutable_config();
  }
  const DatabaseOptions& options() const { return options_; }
  /// Enables/disables the adaptive loop at runtime.
  void set_adapt_enabled(bool on) { options_.adapt_enabled = on; }

  /// Names of all tables.
  std::vector<std::string> TableNames() const;

  /// The whole catalog as text: every table's layout (DescribeLayout).
  /// This is the metadata the paper's storage engine persists alongside
  /// blocks ("Update index" in Fig. 2); trees round-trip through
  /// PartitionTree::Serialize/Parse.
  std::string DumpCatalog() const;

 private:
  /// Sums the storage-backend counters across all tables (buffer-pool hits,
  /// misses, physical writes); per-query deltas fold into QueryRunResult.
  StorageCounters TotalStorageCounters() const;

  DatabaseOptions options_;
  ClusterSim cluster_;
  QueryWindow window_;
  JoinPlanner planner_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<Optimizer>> optimizers_;
  /// Lazily created shared worker pool, reused across queries (sized by
  /// the planner's ExecConfig::num_threads; recreated when that changes).
  std::unique_ptr<TaskPool> pool_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_CORE_DATABASE_H_
