/// \file database.h
/// \brief The AdaptDB storage manager facade (paper Fig. 2).
///
/// A Database owns the simulated cluster, the tables, the query window, the
/// adaptive optimizer and the query planner. Running a query performs the
/// full per-query loop:
///   1. append the query to the window,
///   2. adapt each referenced table (smooth repartitioning between join
///      trees + Amoeba refinement of selection levels), folding the
///      repartitioning I/O into this query's latency — or, with
///      background_adapt, hand the step to the maintenance thread so
///      repartitioning leaves the query path (the paper's background
///      "Update index" loop), and
///   3. plan and execute the query (hyper-join vs shuffle join by cost).
///
/// Baselines are expressed as configuration: disable adaptation for static
/// layouts, force shuffle joins, ignore partitioning for full scans, or
/// enable full (non-smooth) repartitioning.
///
/// ## Thread-safety contract
///
/// RunQuery, AppendRows, Stats, TableNames, DumpCatalog, set_adapt_enabled,
/// adapt_enabled, planner_config, SetPlannerConfig and WaitForMaintenance
/// are safe to call from any number of threads concurrently; CreateTable
/// may run concurrently with queries on other tables. Everything else —
/// mutable_planner_config(), window(), cluster()'s mutators, and mutation
/// through GetTable() — is setup/inspection API: call it only while no
/// queries are in flight (benches and tests do this between runs).
///
/// Concurrency design: each table pairs with a reader-writer lock — queries
/// hold it shared across planning and execution (block contents cannot
/// change under a scan), while adaptation and ingest hold it exclusive.
/// Partition trees are epoch-versioned copy-on-write snapshots (see
/// adapt/tree_set.h), so metadata readers never block and every query plans
/// against one immutable tree version. A single work-stealing TaskPool is
/// created once and multiplexed across in-flight queries (TaskGroups keep
/// per-query work separate); queries are admitted FIFO by a QueryScheduler.

#ifndef ADAPTDB_CORE_DATABASE_H_
#define ADAPTDB_CORE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adapt/optimizer.h"
#include "adapt/query_window.h"
#include "core/query_scheduler.h"
#include "core/table.h"
#include "obs/introspection_server.h"
#include "obs/metrics.h"
#include "planner/join_planner.h"

namespace adaptdb {

class TaskPool;

/// \brief Whole-system configuration.
struct DatabaseOptions {
  ClusterConfig cluster;
  AdaptConfig adapt;
  PlannerConfig planner;
  /// Master switch for the adaptive loop (step 2 above).
  bool adapt_enabled = true;
  /// Maximum queries executing at once; further callers queue FIFO inside
  /// RunQuery. <= 0 means unlimited.
  int32_t max_concurrent_queries = 0;
  /// Move adaptation off the query path: RunQuery enqueues the adaptation
  /// step for a background maintenance thread (which takes the table's
  /// writer lock per step) instead of running it inline. Queries then never
  /// pay repartitioning I/O in their own latency. Default off: inline
  /// adaptation matches the paper's Type-2 accounting and keeps per-query
  /// adapt_io meaningful.
  bool background_adapt = false;
  /// Embedded introspection HTTP server (obs/introspection_server.h),
  /// bound to 127.0.0.1: serves GET /metrics (Prometheus text), /stats
  /// (DatabaseStats JSON), /profile (last query profile) and /trace
  /// (Chrome trace JSON, ?drain=1 clears). -1 disables (the default);
  /// 0 binds an ephemeral port, reported by Database::introspection_port().
  /// When left at -1, the ADAPTDB_HTTP_PORT environment variable (an
  /// integer port) enables it without code changes. A failed bind logs to
  /// stderr and leaves the Database serving without the endpoint.
  int32_t http_port = -1;
  /// Cadence of the background MetricsSampler feeding rate gauges in
  /// Stats() (counter_rates) and /metrics. <= 0 leaves the sampler off —
  /// unless the HTTP server is enabled, which defaults it to 250 ms so
  /// the rate gauges on /metrics are live.
  int32_t sampler_interval_millis = 0;
};

/// \brief A point-in-time snapshot of serving health, from Database::Stats.
struct DatabaseStats {
  /// Queries that entered RunQuery / finished it / finished with an error.
  int64_t queries_started = 0;
  int64_t queries_finished = 0;
  int64_t queries_failed = 0;
  /// Currently admitted and executing.
  int64_t queries_in_flight = 0;
  /// Waiting for FIFO admission.
  int64_t queue_depth = 0;
  /// Wall-clock latency percentiles over the last (up to) 4096 queries.
  int64_t latency_samples = 0;
  double latency_p50_seconds = 0;
  double latency_p99_seconds = 0;
  /// Buffer-pool totals across all tables (zero on the in-memory backend).
  int64_t buffer_hits = 0;
  int64_t buffer_misses = 0;
  double buffer_hit_rate = 0;
  /// Workers in the shared pool (0 until a multi-threaded query runs).
  int32_t pool_threads = 0;
  /// Sum of every table's tree epoch; advances whenever adaptation installs
  /// a new tree version.
  uint64_t tree_epoch_sum = 0;
  /// Background maintenance: queued + running steps, completed steps,
  /// failed steps, and records moved off the query path.
  int64_t maintenance_pending = 0;
  int64_t maintenance_runs = 0;
  int64_t maintenance_failures = 0;
  int64_t maintenance_records_moved = 0;

  /// Registry-derived counters (see obs/metrics.h for exact semantics).
  /// The registry is process-global: these accumulate across *every*
  /// Database in the process, unlike the per-Database fields above. Zero
  /// when compiled with ADAPTDB_DISABLE_METRICS.
  int64_t tasks_executed = 0;
  int64_t tasks_stolen = 0;
  double task_busy_seconds = 0;
  double worker_idle_seconds = 0;
  int64_t queries_admitted = 0;
  double admission_wait_seconds = 0;
  int64_t adapt_steps = 0;
  int64_t adapt_records_moved = 0;
  int64_t adapt_trees_created = 0;
  int64_t blocks_skipped_meta = 0;
  int64_t buffer_evictions = 0;
  int64_t buffer_writebacks = 0;
  int64_t buffer_prefetched = 0;
  /// Out-of-core execution: join partitions routed through spill files,
  /// and the encoded bytes written to / read back from them (registry
  /// counters, cumulative across all queries).
  int64_t spilled_partitions = 0;
  int64_t spill_bytes_written = 0;
  int64_t spill_bytes_read = 0;
  /// Vectorized execution: per-predicate evaluation passes served by the
  /// dispatch-once kernels vs the row-at-a-time MatchesAt fallback
  /// (registry counters, cumulative across all queries).
  int64_t kernel_filters = 0;
  int64_t filter_fallbacks = 0;
  /// Async I/O: read ops submitted to the stores' AsyncIo backends and the
  /// high-water mark of concurrently in-flight reads (max across stores).
  int64_t async_reads = 0;
  int64_t async_reads_inflight_peak = 0;
  /// Counter shards ever leased (== peak concurrent counting threads).
  int64_t metric_shards = 0;

  /// Sampler-derived rates, (counter name, events/second) over the newest
  /// sampling interval, one entry per registry counter. Empty unless the
  /// Database owns a running MetricsSampler (see
  /// DatabaseOptions::sampler_interval_millis).
  std::vector<std::pair<std::string, double>> counter_rates;
  bool sampler_running = false;

  std::string ToString() const;
  /// JSON object with every field above (obs::JsonWriter schema).
  std::string ToJson() const;
  /// Prometheus text exposition (version 0.0.4): registry counters as
  /// `adaptdb_<name>_total`, serving-health fields and sampler rates as
  /// gauges. This is what GET /metrics serves.
  std::string ToPrometheus() const;
};

/// \brief The top-level AdaptDB object.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();

  /// Creates a table and ingests `records` through the upfront partitioner.
  Status CreateTable(const std::string& name, Schema schema,
                     const std::vector<Record>& records,
                     TableOptions table_options = {});

  /// Fetches a table by name. Reading through the pointer is safe while
  /// serving; mutating requires quiescing queries first.
  Result<Table*> GetTable(const std::string& name);

  /// Runs one query through the adapt → plan → execute loop, returning row
  /// counts, I/O and the simulated latency (including adaptation overhead
  /// when adaptation runs inline). Safe from any number of threads.
  Result<QueryRunResult> RunQuery(const Query& q);

  /// Appends new rows to a loaded table (online ingestion, §8): records
  /// route through the table's primary partitioning tree and become visible
  /// to subsequent queries. Takes the table's writer lock, so concurrent
  /// queries see either none or all of the batch.
  Status AppendRows(const std::string& table,
                    const std::vector<Record>& records);

  /// Serving-health snapshot: latency percentiles, queue depth, buffer hit
  /// rate, in-flight count, tree epochs, maintenance progress, plus the
  /// process-global registry counters.
  DatabaseStats Stats() const;

  /// The trace-span profile of the most recent query that ran with
  /// PlannerConfig.collect_profile set (null if none has). Under
  /// concurrency "last" means last to finish.
  std::shared_ptr<const obs::QueryProfile> ProfileLastQuery() const;

  /// Blocks until the background maintenance queue is drained (no-op when
  /// background_adapt is off). Returns the first error any step hit.
  Status WaitForMaintenance();

  /// Port the introspection HTTP server is listening on (127.0.0.1), or
  /// -1 when disabled / failed to bind. Stable while the Database lives.
  int32_t introspection_port() const {
    return server_ != nullptr ? server_->port() : -1;
  }

  /// The simulated cluster (placement, cost accounting).
  ClusterSim* cluster() { return &cluster_; }
  /// The recent query window. Setup/inspection only: not synchronized with
  /// concurrent RunQuery callers.
  QueryWindow* window() { return &window_; }
  /// Planner configuration (mutable for baselines/ablations). Only valid
  /// while no queries are in flight; concurrent togglers must use
  /// SetPlannerConfig.
  PlannerConfig* mutable_planner_config() {
    return planner_.mutable_config();
  }
  /// A copy of the current planner config (safe while serving).
  PlannerConfig planner_config() const;
  /// Replaces the planner config (safe while serving; running queries keep
  /// the config they started with).
  void SetPlannerConfig(const PlannerConfig& config);
  const DatabaseOptions& options() const { return options_; }
  /// Enables/disables the adaptive loop at runtime (safe while serving;
  /// running queries keep the value they observed at admission).
  void set_adapt_enabled(bool on) {
    adapt_enabled_.store(on, std::memory_order_relaxed);
  }
  bool adapt_enabled() const {
    return adapt_enabled_.load(std::memory_order_relaxed);
  }

  /// Names of all tables.
  std::vector<std::string> TableNames() const;

  /// The whole catalog as text: every table's layout (DescribeLayout).
  /// This is the metadata the paper's storage engine persists alongside
  /// blocks ("Update index" in Fig. 2); trees round-trip through
  /// PartitionTree::Serialize/Parse.
  std::string DumpCatalog() const;

 private:
  /// A table plus its optimizer and serving lock: queries hold `mu` shared
  /// through plan+execute, adaptation and ingest hold it exclusive.
  struct TableEntry {
    std::unique_ptr<Table> table;
    std::unique_ptr<Optimizer> optimizer;
    mutable std::shared_mutex mu;
  };

  /// Accumulated effect of the adaptation steps one query triggered.
  struct AdaptTotals {
    IoStats io;
    int64_t records_moved = 0;
    bool created_tree = false;
  };

  /// The query body, run after FIFO admission. `profile` (never null; may
  /// be disabled) collects this query's trace spans on the calling thread.
  Result<QueryRunResult> RunQueryAdmitted(const Query& q,
                                          obs::ProfileBuilder* profile);

  /// Runs the adaptation step for one table under its writer lock.
  Status AdaptTable(const std::string& name, const Query& q,
                    const QueryWindow& window, AdaptTotals* totals);

  /// Looks up a table entry (nullptr when missing). Entries are never
  /// removed, so the pointer stays valid without holding catalog_mu_.
  TableEntry* FindEntry(const std::string& name) const;

  /// Returns the shared pool sized for `threads`, creating it on first use.
  /// The pool is never destroyed while queries are in flight: a resize
  /// request is honored only when this query is the sole one admitted, and
  /// deferred (the old size keeps serving) otherwise.
  TaskPool* EnsurePool(int32_t threads);

  /// Folds a finished query into the latency ring and counters.
  void RecordLatency(double seconds, bool ok);

  /// Background maintenance: drains queued adaptation steps.
  void MaintenanceLoop();

  /// Sums the storage-backend counters across all tables (buffer-pool hits,
  /// misses, physical writes); per-query deltas fold into QueryRunResult.
  /// Under concurrency the deltas attribute other in-flight queries'
  /// activity too — totals stay exact, per-query splits are approximate.
  StorageCounters TotalStorageCounters() const;

  DatabaseOptions options_;
  ClusterSim cluster_;

  /// Guards window_ against concurrent RunQuery callers; adaptation works
  /// on a copy taken under the lock.
  mutable std::mutex window_mu_;
  QueryWindow window_;

  /// Guards planner_'s config for SetPlannerConfig / per-query copies.
  mutable std::mutex config_mu_;
  JoinPlanner planner_;

  std::atomic<bool> adapt_enabled_;

  /// Guards the tables_ map itself; individual entries have their own lock.
  mutable std::shared_mutex catalog_mu_;
  std::map<std::string, std::unique_ptr<TableEntry>> tables_;

  /// Shared worker pool: created once under pool_mu_, multiplexed across
  /// concurrent queries, resized only when a single query is admitted.
  mutable std::mutex pool_mu_;
  std::unique_ptr<TaskPool> pool_;

  QueryScheduler scheduler_;

  /// Latency ring + lifetime counters + the last collected query profile.
  mutable std::mutex stats_mu_;
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  int64_t latency_count_ = 0;
  int64_t started_ = 0;
  int64_t finished_ = 0;
  int64_t failed_ = 0;
  std::shared_ptr<const obs::QueryProfile> last_profile_;

  /// Background maintenance queue + worker (background_adapt only).
  mutable std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  std::deque<Query> maint_queue_;
  bool maint_stop_ = false;
  int64_t maint_active_ = 0;
  int64_t maint_runs_ = 0;
  int64_t maint_failures_ = 0;
  int64_t maint_records_moved_ = 0;
  Status maint_error_;
  std::thread maint_thread_;

  /// Live introspection: optional sampler (rate gauges) + HTTP endpoint.
  /// The server is stopped first in ~Database — its handlers read the
  /// sampler and every stats surface above.
  std::unique_ptr<obs::MetricsSampler> sampler_;
  std::unique_ptr<obs::IntrospectionServer> server_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_CORE_DATABASE_H_
