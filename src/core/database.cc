#include "core/database.h"

namespace adaptdb {

Database::Database(DatabaseOptions options)
    : options_(options),
      cluster_(options.cluster),
      window_(options.adapt.window_size),
      planner_(options.planner) {}

Status Database::CreateTable(const std::string& name, Schema schema,
                             const std::vector<Record>& records,
                             TableOptions table_options) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  auto table = std::make_unique<Table>(name, std::move(schema), table_options);
  ADB_RETURN_NOT_OK(table->Load(records, &cluster_));
  optimizers_[name] =
      std::make_unique<Optimizer>(table->schema(), options_.adapt);
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "'");
  }
  return it->second.get();
}

Result<QueryRunResult> Database::RunQuery(const Query& q) {
  window_.Add(q);

  IoStats adapt_io;
  int64_t records_repartitioned = 0;
  bool created_tree = false;
  if (options_.adapt_enabled) {
    for (const TableRef& ref : q.tables) {
      auto table = GetTable(ref.table);
      if (!table.ok()) return table.status();
      Table* t = table.ValueOrDie();
      auto report = optimizers_[ref.table]->OnQuery(
          ref.table, q, window_, t->sample(), t->trees(), t->store(),
          &cluster_);
      if (!report.ok()) return report.status();
      adapt_io.Merge(report.ValueOrDie().io);
      records_repartitioned += report.ValueOrDie().smooth.records_moved;
      created_tree |= report.ValueOrDie().smooth.created_tree;
    }
  }

  std::vector<TableContext> contexts;
  contexts.reserve(q.tables.size());
  for (const TableRef& ref : q.tables) {
    auto table = GetTable(ref.table);
    if (!table.ok()) return table.status();
    contexts.push_back(table.ValueOrDie()->Context());
  }
  auto result = planner_.Execute(q, contexts, cluster_);
  if (!result.ok()) return result.status();
  QueryRunResult out = std::move(result).ValueOrDie();
  out.adapt_io = adapt_io;
  out.records_repartitioned = records_repartitioned;
  out.created_tree = created_tree;
  out.io.Merge(adapt_io);
  out.seconds = cluster_.SimulatedSeconds(out.io);
  return out;
}

Status Database::AppendRows(const std::string& table,
                            const std::vector<Record>& records) {
  auto t = GetTable(table);
  if (!t.ok()) return t.status();
  IoStats io;
  return t.ValueOrDie()->Append(records, &cluster_, &io);
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

std::string Database::DumpCatalog() const {
  std::string out;
  for (const auto& [name, table] : tables_) {
    out += table->DescribeLayout();
  }
  return out;
}

}  // namespace adaptdb
