#include "core/database.h"

#include "io/disk_block_store.h"
#include "parallel/task_pool.h"

namespace adaptdb {

Database::Database(DatabaseOptions options)
    : options_(options),
      cluster_(options.cluster),
      window_(options.adapt.window_size),
      planner_(options.planner) {}

Database::~Database() = default;

Status Database::CreateTable(const std::string& name, Schema schema,
                             const std::vector<Record>& records,
                             TableOptions table_options) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  auto store =
      MakeTableStore(schema.num_attrs(), options_.cluster.storage, name);
  if (!store.ok()) return store.status();
  auto table = std::make_unique<Table>(name, std::move(schema), table_options,
                                       std::move(store).ValueOrDie());
  ADB_RETURN_NOT_OK(table->Load(records, &cluster_));
  // The ingest boundary is durable: dirty blocks flush to storage here, so
  // load-time I/O errors surface now instead of at some later eviction.
  ADB_RETURN_NOT_OK(table->store()->Flush());
  optimizers_[name] =
      std::make_unique<Optimizer>(table->schema(), options_.adapt);
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "'");
  }
  return it->second.get();
}

StorageCounters Database::TotalStorageCounters() const {
  StorageCounters total;
  for (const auto& [_, table] : tables_) {
    const StorageCounters c =
        static_cast<const Table&>(*table).store().counters();
    total.buffer_hits += c.buffer_hits;
    total.buffer_misses += c.buffer_misses;
    total.physical_block_writes += c.physical_block_writes;
  }
  return total;
}

Result<QueryRunResult> Database::RunQuery(const Query& q) {
  window_.Add(q);
  const StorageCounters storage_before = TotalStorageCounters();

  // Shared worker pool (lazily created, reused across queries): spinning up
  // a pool per operator call wastes thread churn on short queries.
  PlannerConfig* planner_config = planner_.mutable_config();
  if (planner_config->exec.num_threads > 1) {
    if (pool_ == nullptr ||
        pool_->num_threads() != planner_config->exec.num_threads) {
      pool_ = std::make_unique<TaskPool>(planner_config->exec.num_threads);
    }
    planner_config->exec.pool = pool_.get();
  } else {
    planner_config->exec.pool = nullptr;
  }

  IoStats adapt_io;
  int64_t records_repartitioned = 0;
  bool created_tree = false;
  if (options_.adapt_enabled) {
    for (const TableRef& ref : q.tables) {
      auto table = GetTable(ref.table);
      if (!table.ok()) return table.status();
      Table* t = table.ValueOrDie();
      auto report = optimizers_[ref.table]->OnQuery(
          ref.table, q, window_, t->sample(), t->trees(), t->store(),
          &cluster_);
      if (!report.ok()) return report.status();
      adapt_io.Merge(report.ValueOrDie().io);
      records_repartitioned += report.ValueOrDie().smooth.records_moved;
      created_tree |= report.ValueOrDie().smooth.created_tree;
      // Repartitioning rewrites blocks durably in the cost model; flush so
      // the disk backend matches and write errors surface per query.
      ADB_RETURN_NOT_OK(t->store()->Flush());
    }
  }

  std::vector<TableContext> contexts;
  contexts.reserve(q.tables.size());
  for (const TableRef& ref : q.tables) {
    auto table = GetTable(ref.table);
    if (!table.ok()) return table.status();
    contexts.push_back(table.ValueOrDie()->Context());
  }
  auto result = planner_.Execute(q, contexts, cluster_);
  if (!result.ok()) return result.status();
  QueryRunResult out = std::move(result).ValueOrDie();
  out.adapt_io = adapt_io;
  out.records_repartitioned = records_repartitioned;
  out.created_tree = created_tree;
  out.io.Merge(adapt_io);
  // Fold this query's buffer-pool activity into its IoStats. The logical
  // read counters above are backend-independent; these physical counters
  // are zero on the in-memory store.
  const StorageCounters storage_after = TotalStorageCounters();
  out.io.buffer_hits += storage_after.buffer_hits - storage_before.buffer_hits;
  out.io.buffer_misses +=
      storage_after.buffer_misses - storage_before.buffer_misses;
  out.io.physical_block_writes += storage_after.physical_block_writes -
                                  storage_before.physical_block_writes;
  out.seconds = cluster_.SimulatedSeconds(out.io);
  return out;
}

Status Database::AppendRows(const std::string& table,
                            const std::vector<Record>& records) {
  auto t = GetTable(table);
  if (!t.ok()) return t.status();
  IoStats io;
  return t.ValueOrDie()->Append(records, &cluster_, &io);
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

std::string Database::DumpCatalog() const {
  std::string out;
  for (const auto& [name, table] : tables_) {
    out += table->DescribeLayout();
  }
  return out;
}

}  // namespace adaptdb
