#include "core/database.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "io/disk_block_store.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/task_pool.h"

namespace adaptdb {

namespace {

/// Latency samples retained for the p50/p99 estimate.
constexpr size_t kLatencyRingCapacity = 4096;

/// Strict integer parse for port-like environment variables; returns
/// `missing` when unset, empty or not a plain decimal number (a typo'd
/// ADAPTDB_HTTP_PORT must not silently bind an ephemeral port).
int32_t EnvPort(const char* name, int32_t missing) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return missing;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0 || v > 65535) return missing;
  return static_cast<int32_t>(v);
}

/// Shortest %g representation that still round-trips, for Prometheus
/// sample values (same trimming as obs::JsonWriter::Double).
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back = 0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) {
      std::snprintf(buf, sizeof(buf), "%s", shorter);
      break;
    }
  }
  return buf;
}

/// Appends one Prometheus metric family: HELP + TYPE + a single sample.
void PromFamily(std::string* out, const std::string& name, const char* type,
                const std::string& help, double value,
                const std::string& labels = "") {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " " + std::string(type) + "\n";
  *out += name + labels + " " + FormatDouble(value) + "\n";
}

double Percentile(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0;
  const size_t idx = std::min(
      samples->size() - 1,
      static_cast<size_t>(q * static_cast<double>(samples->size())));
  std::nth_element(samples->begin(),
                   samples->begin() + static_cast<ptrdiff_t>(idx),
                   samples->end());
  return (*samples)[idx];
}

}  // namespace

std::string DatabaseStats::ToString() const {
  return "DatabaseStats{started=" + std::to_string(queries_started) +
         ", finished=" + std::to_string(queries_finished) +
         ", failed=" + std::to_string(queries_failed) +
         ", in_flight=" + std::to_string(queries_in_flight) +
         ", queued=" + std::to_string(queue_depth) +
         ", p50_s=" + std::to_string(latency_p50_seconds) +
         ", p99_s=" + std::to_string(latency_p99_seconds) +
         ", buffer_hit_rate=" + std::to_string(buffer_hit_rate) +
         ", pool_threads=" + std::to_string(pool_threads) +
         ", tree_epochs=" + std::to_string(tree_epoch_sum) +
         ", maint_pending=" + std::to_string(maintenance_pending) +
         ", maint_runs=" + std::to_string(maintenance_runs) +
         ", maint_failures=" + std::to_string(maintenance_failures) +
         ", tasks=" + std::to_string(tasks_executed) +
         ", steals=" + std::to_string(tasks_stolen) +
         ", busy_s=" + std::to_string(task_busy_seconds) +
         ", idle_s=" + std::to_string(worker_idle_seconds) +
         ", admitted=" + std::to_string(queries_admitted) +
         ", admission_wait_s=" + std::to_string(admission_wait_seconds) +
         ", adapt_steps=" + std::to_string(adapt_steps) +
         ", adapt_records=" + std::to_string(adapt_records_moved) +
         ", adapt_trees=" + std::to_string(adapt_trees_created) +
         ", blocks_skipped=" + std::to_string(blocks_skipped_meta) +
         ", evictions=" + std::to_string(buffer_evictions) +
         ", writebacks=" + std::to_string(buffer_writebacks) +
         ", prefetched=" + std::to_string(buffer_prefetched) +
         ", spilled_parts=" + std::to_string(spilled_partitions) +
         ", spill_written=" + std::to_string(spill_bytes_written) +
         ", spill_read=" + std::to_string(spill_bytes_read) +
         ", kernel_filters=" + std::to_string(kernel_filters) +
         ", filter_fallbacks=" + std::to_string(filter_fallbacks) +
         ", async_reads=" + std::to_string(async_reads) +
         ", async_inflight_peak=" + std::to_string(async_reads_inflight_peak) +
         ", shards=" + std::to_string(metric_shards) +
         ", sampler=" + (sampler_running ? "on" : "off") + "}";
}

std::string DatabaseStats::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("queries_started", queries_started);
  w.Field("queries_finished", queries_finished);
  w.Field("queries_failed", queries_failed);
  w.Field("queries_in_flight", queries_in_flight);
  w.Field("queue_depth", queue_depth);
  w.Field("latency_samples", latency_samples);
  w.Field("latency_p50_seconds", latency_p50_seconds);
  w.Field("latency_p99_seconds", latency_p99_seconds);
  w.Field("buffer_hits", buffer_hits);
  w.Field("buffer_misses", buffer_misses);
  w.Field("buffer_hit_rate", buffer_hit_rate);
  w.Field("pool_threads", pool_threads);
  w.Field("tree_epoch_sum", static_cast<uint64_t>(tree_epoch_sum));
  w.Field("maintenance_pending", maintenance_pending);
  w.Field("maintenance_runs", maintenance_runs);
  w.Field("maintenance_failures", maintenance_failures);
  w.Field("maintenance_records_moved", maintenance_records_moved);
  w.Field("tasks_executed", tasks_executed);
  w.Field("tasks_stolen", tasks_stolen);
  w.Field("task_busy_seconds", task_busy_seconds);
  w.Field("worker_idle_seconds", worker_idle_seconds);
  w.Field("queries_admitted", queries_admitted);
  w.Field("admission_wait_seconds", admission_wait_seconds);
  w.Field("adapt_steps", adapt_steps);
  w.Field("adapt_records_moved", adapt_records_moved);
  w.Field("adapt_trees_created", adapt_trees_created);
  w.Field("blocks_skipped_meta", blocks_skipped_meta);
  w.Field("buffer_evictions", buffer_evictions);
  w.Field("buffer_writebacks", buffer_writebacks);
  w.Field("buffer_prefetched", buffer_prefetched);
  w.Field("spilled_partitions", spilled_partitions);
  w.Field("spill_bytes_written", spill_bytes_written);
  w.Field("spill_bytes_read", spill_bytes_read);
  w.Field("kernel_filters", kernel_filters);
  w.Field("filter_fallbacks", filter_fallbacks);
  w.Field("async_reads", async_reads);
  w.Field("async_reads_inflight_peak", async_reads_inflight_peak);
  w.Field("metric_shards", metric_shards);
  w.Field("sampler_running", sampler_running);
  w.Key("rates_per_second").BeginObject();
  for (const auto& [name, rate] : counter_rates) w.Field(name, rate);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string DatabaseStats::ToPrometheus() const {
  std::string out;
  out.reserve(4096);
  PromFamily(&out, "adaptdb_build_info", "gauge",
             "Constant 1; labels carry build facts.", 1,
             std::string("{version=\"0.1.0\",metrics=\"") +
                 (obs::kMetricsEnabled ? "on" : "off") + "\"}");

  // Per-Database serving health (gauges: they move both ways).
  PromFamily(&out, "adaptdb_queries_started_total", "counter",
             "Queries that entered RunQuery.",
             static_cast<double>(queries_started));
  PromFamily(&out, "adaptdb_queries_finished_total", "counter",
             "Queries that finished RunQuery.",
             static_cast<double>(queries_finished));
  PromFamily(&out, "adaptdb_queries_failed_total", "counter",
             "Queries that finished with an error.",
             static_cast<double>(queries_failed));
  PromFamily(&out, "adaptdb_queries_in_flight", "gauge",
             "Queries currently admitted and executing.",
             static_cast<double>(queries_in_flight));
  PromFamily(&out, "adaptdb_queue_depth", "gauge",
             "Queries waiting for FIFO admission.",
             static_cast<double>(queue_depth));
  PromFamily(&out, "adaptdb_latency_p50_seconds", "gauge",
             "Median wall latency over the last 4096 queries.",
             latency_p50_seconds);
  PromFamily(&out, "adaptdb_latency_p99_seconds", "gauge",
             "p99 wall latency over the last 4096 queries.",
             latency_p99_seconds);
  PromFamily(&out, "adaptdb_buffer_hit_rate", "gauge",
             "Buffer-pool hit rate across all tables (0 on mem backend).",
             buffer_hit_rate);
  PromFamily(&out, "adaptdb_pool_threads", "gauge",
             "Workers in the shared task pool.",
             static_cast<double>(pool_threads));
  PromFamily(&out, "adaptdb_tree_epoch_sum", "gauge",
             "Sum of every table's partition-tree epoch.",
             static_cast<double>(tree_epoch_sum));
  PromFamily(&out, "adaptdb_maintenance_pending", "gauge",
             "Queued plus running background adaptation steps.",
             static_cast<double>(maintenance_pending));

  // Process-global registry counters (monotone; see obs/metrics.h). The
  // duration counters export in seconds, Prometheus' base unit.
  const struct {
    const char* name;
    double value;
    const char* help;
  } counters[] = {
      {"adaptdb_tasks_executed_total", static_cast<double>(tasks_executed),
       "Tasks run to completion by any worker or helper."},
      {"adaptdb_tasks_stolen_total", static_cast<double>(tasks_stolen),
       "Tasks taken from another worker's deque."},
      {"adaptdb_task_busy_seconds_total", task_busy_seconds,
       "Wall seconds spent inside task bodies."},
      {"adaptdb_worker_idle_seconds_total", worker_idle_seconds,
       "Wall seconds workers spent blocked waiting for work."},
      {"adaptdb_queries_admitted_total",
       static_cast<double>(queries_admitted),
       "Queries that passed FIFO admission (process-wide)."},
      {"adaptdb_admission_wait_seconds_total", admission_wait_seconds,
       "Wall seconds queries waited for admission."},
      {"adaptdb_adapt_steps_total", static_cast<double>(adapt_steps),
       "Repartitioning passes that moved at least one record."},
      {"adaptdb_adapt_records_moved_total",
       static_cast<double>(adapt_records_moved),
       "Records rewritten during repartitioning."},
      {"adaptdb_adapt_trees_created_total",
       static_cast<double>(adapt_trees_created),
       "Partition trees (re)built by adaptation."},
      {"adaptdb_blocks_skipped_meta_total",
       static_cast<double>(blocks_skipped_meta),
       "Blocks skipped via min/max metadata."},
      {"adaptdb_buffer_hits_total", static_cast<double>(buffer_hits),
       "Buffer-pool lookups served from memory."},
      {"adaptdb_buffer_misses_total", static_cast<double>(buffer_misses),
       "Buffer-pool lookups that read from disk."},
      {"adaptdb_buffer_evictions_total",
       static_cast<double>(buffer_evictions), "Frames evicted."},
      {"adaptdb_buffer_writebacks_total",
       static_cast<double>(buffer_writebacks),
       "Dirty frames written back to disk."},
      {"adaptdb_buffer_prefetched_total",
       static_cast<double>(buffer_prefetched),
       "Frames loaded ahead of use by Prefetch()."},
      {"adaptdb_spilled_partitions_total",
       static_cast<double>(spilled_partitions),
       "Join partitions routed through spill files."},
      {"adaptdb_spill_bytes_written_total",
       static_cast<double>(spill_bytes_written),
       "Encoded bytes written to spill files."},
      {"adaptdb_spill_bytes_read_total",
       static_cast<double>(spill_bytes_read),
       "Encoded bytes read back from spill files."},
      {"adaptdb_kernel_filters_total", static_cast<double>(kernel_filters),
       "Predicate passes served by the vectorized kernels."},
      {"adaptdb_filter_fallbacks_total",
       static_cast<double>(filter_fallbacks),
       "Predicate passes on the row-at-a-time fallback."},
      {"adaptdb_async_reads_total", static_cast<double>(async_reads),
       "Read ops submitted to AsyncIo backends."},
      {"adaptdb_async_reads_inflight_peak",
       static_cast<double>(async_reads_inflight_peak),
       "High-water mark of concurrently in-flight async reads."},
      {"adaptdb_metric_shards", static_cast<double>(metric_shards),
       "Counter shards ever leased (peak concurrent counting threads)."},
  };
  for (const auto& c : counters) {
    const bool is_counter =
        std::string_view(c.name).find("_total") != std::string_view::npos;
    PromFamily(&out, c.name, is_counter ? "counter" : "gauge", c.help,
               c.value);
  }

  // Sampler-derived rate gauges, one per registry counter.
  for (const auto& [name, rate] : counter_rates) {
    PromFamily(&out, "adaptdb_" + name + "_rate", "gauge",
               "Events per second over the newest sampling interval.", rate);
  }
  return out;
}

Database::Database(DatabaseOptions options)
    : options_(options),
      cluster_(options.cluster),
      window_(options.adapt.window_size),
      planner_(options.planner),
      adapt_enabled_(options.adapt_enabled),
      scheduler_(options.max_concurrent_queries) {
  if (options_.background_adapt) {
    maint_thread_ = std::thread([this] { MaintenanceLoop(); });
  }

  // Live introspection. The env overrides make both opt-ins reachable
  // without code changes: ADAPTDB_HTTP_PORT enables the endpoint,
  // ADAPTDB_TRACE=1 turns the process-global tracer on.
  int32_t http_port = options_.http_port;
  if (http_port < 0) http_port = EnvPort("ADAPTDB_HTTP_PORT", -1);
  if (const char* env = std::getenv("ADAPTDB_TRACE")) {
    if (*env == '1') obs::Tracer::Instance().SetEnabled(true);
  }
  int32_t sampler_interval = options_.sampler_interval_millis;
  if (sampler_interval <= 0 && http_port >= 0) sampler_interval = 250;
  if (sampler_interval > 0) {
    sampler_ = std::make_unique<obs::MetricsSampler>(sampler_interval);
    sampler_->Start();
  }
  if (http_port >= 0) {
    server_ = std::make_unique<obs::IntrospectionServer>();
    server_->Handle("/stats", [this](const std::string&) {
      obs::IntrospectionServer::Response r;
      r.body = Stats().ToJson() + "\n";
      return r;
    });
    server_->Handle("/metrics", [this](const std::string&) {
      obs::IntrospectionServer::Response r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = Stats().ToPrometheus();
      return r;
    });
    server_->Handle("/profile", [this](const std::string&) {
      obs::IntrospectionServer::Response r;
      if (auto profile = ProfileLastQuery()) {
        r.body = profile->ToJson() + "\n";
      } else {
        r.status = 404;
        r.body =
            "{\"error\":\"no profile collected; set "
            "PlannerConfig.collect_profile\"}\n";
      }
      return r;
    });
    server_->Handle("/trace", [](const std::string& query) {
      obs::IntrospectionServer::Response r;
      const bool drain = query.find("drain=1") != std::string::npos;
      r.body = obs::Tracer::Instance().ToChromeJson(drain) + "\n";
      return r;
    });
    const Status started = server_->Start(http_port);
    if (!started.ok()) {
      std::fprintf(stderr, "adaptdb: introspection server disabled: %s\n",
                   started.ToString().c_str());
      server_.reset();
    }
  }
}

Database::~Database() {
  // Stop serving introspection before tearing anything else down: handlers
  // read Stats() (scheduler, tables, maintenance counters) and sampler_.
  server_.reset();
  sampler_.reset();
  if (maint_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(maint_mu_);
      maint_stop_ = true;
    }
    maint_cv_.notify_all();
    maint_thread_.join();
  }
}

Status Database::CreateTable(const std::string& name, Schema schema,
                             const std::vector<Record>& records,
                             TableOptions table_options) {
  if (FindEntry(name) != nullptr) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  auto store =
      MakeTableStore(schema.num_attrs(), options_.cluster.storage, name);
  if (!store.ok()) return store.status();
  auto table = std::make_unique<Table>(name, std::move(schema), table_options,
                                       std::move(store).ValueOrDie());
  ADB_RETURN_NOT_OK(table->Load(records, &cluster_));
  // The ingest boundary is durable: dirty blocks flush to storage here, so
  // load-time I/O errors surface now instead of at some later eviction.
  ADB_RETURN_NOT_OK(table->store()->Flush());
  auto entry = std::make_unique<TableEntry>();
  entry->optimizer =
      std::make_unique<Optimizer>(table->schema(), options_.adapt);
  entry->table = std::move(table);
  {
    std::unique_lock<std::shared_mutex> lock(catalog_mu_);
    if (tables_.count(name) > 0) {
      return Status::AlreadyExists("table '" + name + "'");
    }
    tables_[name] = std::move(entry);
  }
  return Status::OK();
}

Database::TableEntry* Database::FindEntry(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<Table*> Database::GetTable(const std::string& name) {
  TableEntry* entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("table '" + name + "'");
  }
  return entry->table.get();
}

StorageCounters Database::TotalStorageCounters() const {
  StorageCounters total;
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  for (const auto& [_, entry] : tables_) {
    const StorageCounters c =
        static_cast<const Table&>(*entry->table).store().counters();
    total.buffer_hits += c.buffer_hits;
    total.buffer_misses += c.buffer_misses;
    total.physical_block_writes += c.physical_block_writes;
    total.async_reads += c.async_reads;
    total.async_inflight_peak =
        std::max(total.async_inflight_peak, c.async_inflight_peak);
  }
  return total;
}

PlannerConfig Database::planner_config() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return planner_.config();
}

void Database::SetPlannerConfig(const PlannerConfig& config) {
  std::lock_guard<std::mutex> lock(config_mu_);
  *planner_.mutable_config() = config;
}

TaskPool* Database::EnsurePool(int32_t threads) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<TaskPool>(threads);
  } else if (pool_->num_threads() != threads && scheduler_.InFlight() <= 1) {
    // Resize only while we are the sole admitted query: nobody else can
    // hold the old pool pointer, so tearing it down is safe. With peers in
    // flight the old size keeps serving this query.
    pool_ = std::make_unique<TaskPool>(threads);
  }
  return pool_.get();
}

Status Database::AdaptTable(const std::string& name, const Query& q,
                            const QueryWindow& window, AdaptTotals* totals) {
  TableEntry* entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("table '" + name + "'");
  }
  // Writer lock: repartitioning rewrites block contents, which must never
  // happen under a concurrent scan.
  std::unique_lock<std::shared_mutex> lock = [&] {
    obs::TraceSpan span("scheduler", "table_write_lock");
    return std::unique_lock<std::shared_mutex>(entry->mu);
  }();
  obs::TraceSpan adapt_span("adapt", "adapt_table");
  Table* t = entry->table.get();
  auto report = entry->optimizer->OnQuery(name, q, window, t->sample(),
                                          t->trees(), t->store(), &cluster_);
  if (!report.ok()) return report.status();
  const AdaptReport& rep = report.ValueOrDie();
  adapt_span.SetArg("records_moved", rep.smooth.records_moved);
  totals->io.Merge(rep.io);
  totals->records_moved += rep.smooth.records_moved;
  totals->created_tree |= rep.smooth.created_tree;
  if (rep.smooth.records_moved > 0) {
    obs::Count(obs::Counter::kAdaptSteps);
    obs::Count(obs::Counter::kAdaptRecordsMoved, rep.smooth.records_moved);
  }
  if (rep.smooth.created_tree) {
    obs::Count(obs::Counter::kAdaptTreesCreated);
  }
  // Repartitioning rewrites blocks durably in the cost model; flush so
  // the disk backend matches and write errors surface per query.
  return t->store()->Flush();
}

Result<QueryRunResult> Database::RunQuery(const Query& q) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++started_;
  }
  const PlannerConfig config_snapshot = planner_config();
  obs::TraceSpan query_span("query", "run_query");
  // The profile is recorded entirely on this thread (builder methods are
  // not thread-safe); worker-side effects surface through IoStats merged
  // at barriers and through registry counter deltas.
  obs::ProfileBuilder profile(config_snapshot.collect_profile);
  profile.Begin("query");
  QueryScheduler::Admission admission = [&] {
    obs::ProfileBuilder::Span span(&profile, "admission_wait");
    return scheduler_.Admit();
  }();
  const auto wall_start = std::chrono::steady_clock::now();
  auto result = RunQueryAdmitted(q, &profile);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  RecordLatency(wall, result.ok());
  if (!profile.enabled()) return result;
  auto finished = profile.Finish(q.name, config_snapshot.exec.num_threads);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_profile_ = finished;
  }
  if (!result.ok()) return result.status();
  QueryRunResult out = std::move(result).ValueOrDie();
  out.profile = std::move(finished);
  return out;
}

std::shared_ptr<const obs::QueryProfile> Database::ProfileLastQuery() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return last_profile_;
}

Result<QueryRunResult> Database::RunQueryAdmitted(
    const Query& q, obs::ProfileBuilder* profile) {
  QueryWindow window_copy = [&] {
    std::lock_guard<std::mutex> lock(window_mu_);
    window_.Add(q);
    return window_;
  }();
  const StorageCounters storage_before = TotalStorageCounters();

  // Per-query config copy: concurrent SetPlannerConfig/set_adapt_enabled
  // callers never mutate a config a running query reads. The shared worker
  // pool is created once and multiplexed (TaskGroups isolate each query's
  // tasks); it is never torn down while peers are in flight.
  PlannerConfig config;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    config = planner_.config();
  }
  config.exec.pool = config.exec.num_threads > 1
                         ? EnsurePool(config.exec.num_threads)
                         : nullptr;

  AdaptTotals adapt;
  if (adapt_enabled_.load(std::memory_order_relaxed)) {
    obs::ProfileBuilder::Span adapt_span(profile, "adapt");
    if (options_.background_adapt) {
      // Off the query path: the maintenance thread picks the step up and
      // runs it under the tables' writer locks (Fig. 2's "Update index").
      {
        std::lock_guard<std::mutex> lock(maint_mu_);
        maint_queue_.push_back(q);
      }
      maint_cv_.notify_one();
      if (profile != nullptr) profile->AddAttr("queued", 1);
    } else {
      for (const TableRef& ref : q.tables) {
        obs::ProfileBuilder::Span table_span(profile, "adapt:" + ref.table);
        AdaptTotals per;
        ADB_RETURN_NOT_OK(AdaptTable(ref.table, q, window_copy, &per));
        if (profile != nullptr) {
          profile->AddIo(per.io);
          profile->AddAttr("records_moved", per.records_moved);
        }
        adapt.io.Merge(per.io);
        adapt.records_moved += per.records_moved;
        adapt.created_tree |= per.created_tree;
      }
    }
  }

  // Reader locks in sorted-name order (deadlock-free against multi-table
  // peers), held through plan + execute: the plan's tree snapshot and the
  // blocks it names stay consistent for the whole query.
  std::vector<std::string> names;
  names.reserve(q.tables.size());
  for (const TableRef& ref : q.tables) names.push_back(ref.table);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());

  std::vector<TableEntry*> entries;
  entries.reserve(names.size());
  for (const std::string& name : names) {
    TableEntry* entry = FindEntry(name);
    if (entry == nullptr) {
      return Status::NotFound("table '" + name + "'");
    }
    entries.push_back(entry);
  }
  std::vector<std::shared_lock<std::shared_mutex>> read_locks;
  read_locks.reserve(entries.size());
  {
    obs::ProfileBuilder::Span lock_span(profile, "lock_wait");
    for (TableEntry* entry : entries) {
      obs::TraceSpan lock_trace("scheduler", "table_read_lock");
      read_locks.emplace_back(entry->mu);
    }
  }

  std::vector<TableContext> contexts;
  contexts.reserve(entries.size());
  for (TableEntry* entry : entries) {
    contexts.push_back(entry->table->Context());
  }
  obs::ProfileBuilder::Span exec_span(profile, "execute");
  auto result = planner_.Execute(q, contexts, cluster_, config, profile);
  exec_span.Close();
  if (!result.ok()) return result.status();
  QueryRunResult out = std::move(result).ValueOrDie();
  out.adapt_io = adapt.io;
  out.records_repartitioned = adapt.records_moved;
  out.created_tree = adapt.created_tree;
  out.io.Merge(adapt.io);
  // Fold this query's buffer-pool activity into its IoStats. The logical
  // read counters above are backend-independent; these physical counters
  // are zero on the in-memory store.
  const StorageCounters storage_after = TotalStorageCounters();
  out.io.buffer_hits += storage_after.buffer_hits - storage_before.buffer_hits;
  out.io.buffer_misses +=
      storage_after.buffer_misses - storage_before.buffer_misses;
  out.io.physical_block_writes += storage_after.physical_block_writes -
                                  storage_before.physical_block_writes;
  out.seconds = cluster_.SimulatedSeconds(out.io);
  return out;
}

void Database::RecordLatency(double seconds, bool ok) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (latency_ring_.size() < kLatencyRingCapacity) {
    latency_ring_.push_back(seconds);
  } else {
    latency_ring_[latency_next_] = seconds;
  }
  latency_next_ = (latency_next_ + 1) % kLatencyRingCapacity;
  ++latency_count_;
  ++finished_;
  if (!ok) ++failed_;
}

DatabaseStats Database::Stats() const {
  DatabaseStats stats;
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.queries_started = started_;
    stats.queries_finished = finished_;
    stats.queries_failed = failed_;
    stats.latency_samples = latency_count_;
    samples = latency_ring_;
  }
  stats.latency_p50_seconds = Percentile(&samples, 0.50);
  stats.latency_p99_seconds = Percentile(&samples, 0.99);
  stats.queries_in_flight = scheduler_.InFlight();
  stats.queue_depth = scheduler_.QueueDepth();
  const StorageCounters counters = TotalStorageCounters();
  stats.buffer_hits = counters.buffer_hits;
  stats.buffer_misses = counters.buffer_misses;
  const int64_t accesses = counters.buffer_hits + counters.buffer_misses;
  stats.buffer_hit_rate =
      accesses > 0 ? static_cast<double>(counters.buffer_hits) /
                         static_cast<double>(accesses)
                   : 0;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    stats.pool_threads = pool_ != nullptr ? pool_->num_threads() : 0;
  }
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    for (const auto& [_, entry] : tables_) {
      stats.tree_epoch_sum += entry->table->trees()->epoch();
    }
  }
  {
    std::lock_guard<std::mutex> lock(maint_mu_);
    stats.maintenance_pending =
        static_cast<int64_t>(maint_queue_.size()) + maint_active_;
    stats.maintenance_runs = maint_runs_;
    stats.maintenance_failures = maint_failures_;
    stats.maintenance_records_moved = maint_records_moved_;
  }
  const obs::MetricsSnapshot m = obs::MetricsRegistry::Instance().Aggregate();
  stats.tasks_executed = m[obs::Counter::kTasksExecuted];
  stats.tasks_stolen = m[obs::Counter::kTasksStolen];
  stats.task_busy_seconds =
      static_cast<double>(m[obs::Counter::kTaskBusyNanos]) / 1e9;
  stats.worker_idle_seconds =
      static_cast<double>(m[obs::Counter::kWorkerIdleNanos]) / 1e9;
  stats.queries_admitted = m[obs::Counter::kQueriesAdmitted];
  stats.admission_wait_seconds =
      static_cast<double>(m[obs::Counter::kAdmissionWaitNanos]) / 1e9;
  stats.adapt_steps = m[obs::Counter::kAdaptSteps];
  stats.adapt_records_moved = m[obs::Counter::kAdaptRecordsMoved];
  stats.adapt_trees_created = m[obs::Counter::kAdaptTreesCreated];
  stats.blocks_skipped_meta = m[obs::Counter::kBlocksSkippedMeta];
  stats.buffer_evictions = m[obs::Counter::kBufferEvictions];
  stats.buffer_writebacks = m[obs::Counter::kBufferWritebacks];
  stats.buffer_prefetched = m[obs::Counter::kBufferPrefetched];
  stats.spilled_partitions = m[obs::Counter::kSpilledPartitions];
  stats.spill_bytes_written = m[obs::Counter::kSpillBytesWritten];
  stats.spill_bytes_read = m[obs::Counter::kSpillBytesRead];
  stats.kernel_filters = m[obs::Counter::kKernelFilters];
  stats.filter_fallbacks = m[obs::Counter::kFilterFallbacks];
  stats.async_reads = counters.async_reads;
  stats.async_reads_inflight_peak = counters.async_inflight_peak;
  stats.metric_shards =
      static_cast<int64_t>(obs::MetricsRegistry::Instance().num_shards());
  if (sampler_ != nullptr) {
    stats.sampler_running = sampler_->running();
    stats.counter_rates.reserve(static_cast<size_t>(obs::kNumCounters));
    for (int32_t i = 0; i < obs::kNumCounters; ++i) {
      const auto c = static_cast<obs::Counter>(i);
      stats.counter_rates.emplace_back(std::string(obs::CounterName(c)),
                                       sampler_->RatePerSecond(c));
    }
  }
  return stats;
}

void Database::MaintenanceLoop() {
  for (;;) {
    Query q;
    {
      std::unique_lock<std::mutex> lock(maint_mu_);
      maint_cv_.wait(lock,
                     [&] { return maint_stop_ || !maint_queue_.empty(); });
      if (maint_queue_.empty()) return;  // Stopping, queue drained.
      q = std::move(maint_queue_.front());
      maint_queue_.pop_front();
      ++maint_active_;
    }
    QueryWindow window_copy = [&] {
      std::lock_guard<std::mutex> lock(window_mu_);
      return window_;
    }();
    AdaptTotals totals;
    Status status = Status::OK();
    for (const TableRef& ref : q.tables) {
      Status s = AdaptTable(ref.table, q, window_copy, &totals);
      if (!s.ok() && status.ok()) status = s;
    }
    {
      std::lock_guard<std::mutex> lock(maint_mu_);
      --maint_active_;
      ++maint_runs_;
      maint_records_moved_ += totals.records_moved;
      if (!status.ok()) {
        ++maint_failures_;
        if (maint_error_.ok()) maint_error_ = status;
      }
    }
    maint_cv_.notify_all();
  }
}

Status Database::WaitForMaintenance() {
  std::unique_lock<std::mutex> lock(maint_mu_);
  maint_cv_.wait(lock,
                 [&] { return maint_queue_.empty() && maint_active_ == 0; });
  return maint_error_;
}

Status Database::AppendRows(const std::string& table,
                            const std::vector<Record>& records) {
  TableEntry* entry = FindEntry(table);
  if (entry == nullptr) {
    return Status::NotFound("table '" + table + "'");
  }
  // Writer lock: the batch becomes visible atomically to queries.
  std::unique_lock<std::shared_mutex> lock(entry->mu);
  IoStats io;
  return entry->table->Append(records, &cluster_, &io);
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

std::string Database::DumpCatalog() const {
  std::vector<TableEntry*> entries;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    entries.reserve(tables_.size());
    for (const auto& [_, entry] : tables_) entries.push_back(entry.get());
  }
  std::string out;
  for (TableEntry* entry : entries) {
    // Reader lock per table: a consistent layout line even mid-adaptation.
    std::shared_lock<std::shared_mutex> lock(entry->mu);
    out += entry->table->DescribeLayout();
  }
  return out;
}

}  // namespace adaptdb
