#include "core/query_scheduler.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace adaptdb {

QueryScheduler::Admission QueryScheduler::Admit() {
  std::unique_lock<std::mutex> lock(mu_);
  const int64_t ticket = next_ticket_++;
  {
    obs::ScopedNanos wait(obs::Counter::kAdmissionWaitNanos);
    obs::TraceSpan wait_span("scheduler", "admission_wait", "ticket", ticket);
    cv_.wait(lock, [&] {
      return front_ticket_ == ticket && (limit_ <= 0 || in_flight_ < limit_);
    });
  }
  obs::Count(obs::Counter::kQueriesAdmitted);
  ++front_ticket_;
  ++in_flight_;
  ++total_admitted_;
  // Wake the next ticket: with free slots it can be admitted immediately
  // (FIFO order is preserved by the front_ticket_ check).
  cv_.notify_all();
  return Admission(this);
}

void QueryScheduler::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  cv_.notify_all();
}

int64_t QueryScheduler::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int64_t QueryScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ticket_ - front_ticket_;
}

int64_t QueryScheduler::TotalAdmitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_admitted_;
}

}  // namespace adaptdb
